"""SMS node ordering (Llosa, PACT'96; as in GCC 4.1.1's implementation).

Two phases:

1. **Partitioning** — nodes are grouped into an ordered list of sets: the
   SCCs of the DDG in decreasing RecMII priority, each augmented with the
   nodes lying on condensation paths between it and previously placed SCCs;
   remaining nodes form the final set.  This gives "preference to the
   instructions in the critical path" (paper Section 4.1).

2. **Swing ordering** — each set is ordered by alternating top-down sweeps
   (from nodes whose predecessors are already ordered, prioritised by
   height) and bottom-up sweeps (from nodes whose successors are already
   ordered, prioritised by depth), so that no node gets both its
   predecessors and successors ordered before itself unless the graph
   forces it.

Tie-breaking differs slightly between published SMS descriptions and GCC;
we break ties by lower mobility, then original program position, which
preserves all the properties the paper relies on (critical recurrences
first, neighbours adjacent).
"""

from __future__ import annotations

from typing import Sequence

from ..graph.ddg import DDG
from ..graph.paths import NodeMetrics, compute_metrics
from ..graph.scc import strongly_connected_components
from ..graph.mii import scc_rec_mii

__all__ = ["partition_into_sets", "compute_node_order"]


def partition_into_sets(ddg: DDG) -> list[list[str]]:
    """Ordered node sets for the swing ordering (phase 1)."""
    comps = strongly_connected_components(ddg)
    recmiis = scc_rec_mii(ddg, comps)

    def is_nontrivial(idx: int) -> bool:
        comp = comps[idx]
        if len(comp) > 1:
            return True
        name = comp[0]
        return any(e.dst == name for e in ddg.succs(name))

    nontrivial = [i for i in range(len(comps)) if is_nontrivial(i)]
    # decreasing RecMII; ties: larger component, then earliest position
    nontrivial.sort(key=lambda i: (
        -recmiis[i], -len(comps[i]),
        min(ddg.node(n).position for n in comps[i])))

    comp_of: dict[str, int] = {}
    for idx, comp in enumerate(comps):
        for name in comp:
            comp_of[name] = idx

    # condensation reachability (over all edges, any distance)
    succ_comp: dict[int, set[int]] = {i: set() for i in range(len(comps))}
    for e in ddg.edges:
        cu, cv = comp_of[e.src], comp_of[e.dst]
        if cu != cv:
            succ_comp[cu].add(cv)
    reach = _transitive_closure(succ_comp)

    sets: list[list[str]] = []
    placed_comps: set[int] = set()
    placed_nodes: set[str] = set()
    for scc_idx in nontrivial:
        members = set(comps[scc_idx])
        # nodes on condensation paths between already placed SCCs and this one
        path_comps: set[int] = set()
        for prev in placed_comps:
            for a, b in ((prev, scc_idx), (scc_idx, prev)):
                if b in reach[a]:
                    path_comps.update(
                        c for c in range(len(comps))
                        if c not in (a, b) and c in reach[a] and b in reach[c])
        for c in path_comps:
            members.update(comps[c])
        new_set = sorted(members - placed_nodes,
                         key=lambda n: ddg.node(n).position)
        if new_set:
            sets.append(new_set)
            placed_nodes.update(new_set)
        placed_comps.add(scc_idx)
        placed_comps.update(path_comps)
    remaining = sorted((n.name for n in ddg.nodes if n.name not in placed_nodes),
                       key=lambda n: ddg.node(n).position)
    if remaining:
        sets.append(remaining)
    return sets


def _transitive_closure(succ: dict[int, set[int]]) -> dict[int, set[int]]:
    reach: dict[int, set[int]] = {}
    order = list(succ)
    for u in order:
        seen: set[int] = set()
        stack = list(succ[u])
        while stack:
            v = stack.pop()
            if v in seen:
                continue
            seen.add(v)
            stack.extend(succ[v] - seen)
        reach[u] = seen
    return reach


def compute_node_order(ddg: DDG,
                       metrics: dict[str, NodeMetrics] | None = None,
                       sets: Sequence[Sequence[str]] | None = None) -> list[str]:
    """Swing ordering (phase 2): the list SMS/TMS pop nodes from."""
    order, _directions = compute_node_order_with_directions(ddg, metrics, sets)
    return order


def compute_node_order_with_directions(
    ddg: DDG,
    metrics: dict[str, NodeMetrics] | None = None,
    sets: Sequence[Sequence[str]] | None = None,
) -> tuple[list[str], dict[str, str]]:
    """Swing ordering plus the sweep direction each node was ordered in.

    The direction ("top-down" / "bottom-up") matters at scheduling time:
    when a node has both predecessors and successors already placed, SMS
    scans its window in the direction it was ordered — bottom-up nodes are
    placed as late as possible (near their consumers), top-down nodes as
    early as possible (near their producers).  Scanning the wrong way can
    wedge an upstream chain into an empty window at *every* II.
    """
    if metrics is None:
        metrics = compute_metrics(ddg)
    if sets is None:
        sets = partition_into_sets(ddg)

    order: list[str] = []
    directions: dict[str, str] = {}
    ordered: set[str] = set()

    for raw_set in sets:
        s = [n for n in raw_set if n not in ordered]
        if not s:
            continue
        s_set = set(s)
        has_pred = {n for n in s
                    if any(e.src in ordered for e in ddg.preds(n))}
        has_succ = {n for n in s
                    if any(e.dst in ordered for e in ddg.succs(n))}
        if has_pred and not has_succ:
            ready, direction = set(has_pred), "top-down"
        elif has_succ and not has_pred:
            ready, direction = set(has_succ), "bottom-up"
        elif has_pred and has_succ:
            # connected both ways: start bottom-up from the nodes feeding
            # the already-ordered sets (Llosa's ``Pred_L(O) ∩ S``), so a
            # node is never ordered before the producers it depends on get
            # their chance in a later swing.
            ready, direction = set(has_succ), "bottom-up"
        else:
            # first set: start bottom-up from the sinks of the set's
            # intra-iteration subgraph (or, in a pure recurrence, the
            # deepest node).  This reproduces the paper's motivating-
            # example order n5, n4, n2, n1, n0, n3, ...
            sinks = {n for n in s
                     if not any(e.distance == 0 and e.dst in s_set
                                for e in ddg.succs(n))}
            ready = sinks or {max(s, key=lambda n: (
                metrics[n].depth, -ddg.node(n).position))}
            direction = "bottom-up"

        while len(ordered & s_set) < len(s_set):
            ready &= s_set - ordered
            while ready:
                if direction == "top-down":
                    v = max(ready, key=lambda n: (
                        metrics[n].height, -metrics[n].mobility,
                        -ddg.node(n).position))
                else:
                    v = max(ready, key=lambda n: (
                        metrics[n].depth, -metrics[n].mobility,
                        -ddg.node(n).position))
                ready.discard(v)
                order.append(v)
                directions[v] = direction
                ordered.add(v)
                if direction == "top-down":
                    ready |= {e.dst for e in ddg.succs(v)
                              if e.dst in s_set and e.dst not in ordered}
                else:
                    ready |= {e.src for e in ddg.preds(v)
                              if e.src in s_set and e.src not in ordered}
            # swing: reverse direction, seed from the frontier of what is
            # already ordered.
            if direction == "top-down":
                direction = "bottom-up"
                ready = {e.src for n in ordered for e in ddg.preds(n)
                         if e.src in s_set and e.src not in ordered}
            else:
                direction = "top-down"
                ready = {e.dst for n in ordered for e in ddg.succs(n)
                         if e.dst in s_set and e.dst not in ordered}
            if not ready and len(ordered & s_set) < len(s_set):
                # disconnected remainder inside the set: restart from its
                # most critical node.
                rest = s_set - ordered
                ready = {max(rest, key=lambda n: (
                    metrics[n].height, -ddg.node(n).position))}
                direction = "top-down"
    return order, directions
