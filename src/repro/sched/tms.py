"""Thread-sensitive Modulo Scheduling (the paper's contribution, Figure 3).

TMS keeps SMS's machinery (same node order, same windows, same restart-on-
failure discipline) and changes two things:

1. **Objective.**  Instead of minimising II alone, TMS minimises
   ``F(II, C_delay) = T_nomiss / N`` (Section 4.2).  It enumerates
   ``(II, C_delay)`` pairs in increasing order of ``F`` — the exact analogue
   of Figure 3's ``F_min++`` loop, with exact ``F`` granularity — and
   returns the first pair admitting a valid schedule.

2. **Issue-slot selection.**  A conflict-free slot is accepted only if
   (C1) every *new* inter-iteration register dependence it creates has a
   sync delay at most the current ``C_delay`` threshold, and (C2) whenever
   it introduces new inter-iteration memory dependences, the misspeculation
   frequency ``1 - prod(1 - p_e)`` over all *non-preserved* memory
   dependences among the scheduled instructions stays at most ``P_max``.

Pruning (documented divergence): a failure at ``(II, C)`` is taken to imply
failure at ``(II, C' < C)`` — C1 with a smaller threshold only rejects more
slots.  This is how GCC-style implementations keep the restart loop
tractable and never triggered a false negative on our workloads.

The ``speculation=False`` mode (Section 5.2's ablation) treats memory flow
dependences as synchronised: they join C1 and never misspeculate.
"""

from __future__ import annotations

import math
import time
from typing import Mapping

from ..config import ArchConfig, SchedulerConfig
from ..costmodel.exectime import (
    achieved_c_delay,
    estimate_execution_time,
    kernel_misspec_probability,
    objective_f,
    t_lower_bound,
)
from ..errors import SchedulingBudgetExceeded, SchedulingError
from ..graph.ddg import DDG
from ..machine.resources import ResourceModel
from ..obs import metrics
from ..obs.events import get_tracer
from .engine import TMSContext, TMSPolicy
from .schedule import Schedule, validate_schedule
from .sms import SwingModuloScheduler

__all__ = ["ThreadSensitiveScheduler", "schedule_tms"]

#: hard cap on scheduling attempts per P_max value (safety net).
_MAX_ATTEMPTS = 4000


class ThreadSensitiveScheduler(SwingModuloScheduler):
    """TMS over one DDG, resource model and SpMT architecture."""

    algorithm_name = "TMS"

    def __init__(self, ddg: DDG, resources: ResourceModel, arch: ArchConfig,
                 config: SchedulerConfig | None = None) -> None:
        super().__init__(ddg, resources, config)
        self.arch = arch
        self.seed_high = True
        self._max_lat = max((n.latency for n in ddg.nodes), default=1)
        #: per-DDG facts of the C1/C2 conditions (flow-edge tables,
        #: ancestor closures, tiebreak inputs), shared by every
        #: (II, C_delay) candidate of the search.
        self._tms_ctx = TMSContext(ddg, self.engine.ctx)
        #: wall-clock watchdog deadline (armed per schedule() call).
        self._deadline: float | None = None

    # -- public API -----------------------------------------------------------

    def schedule(self) -> Schedule:
        cfg = self.config
        if cfg.max_schedule_seconds is not None:
            self._deadline = time.monotonic() + cfg.max_schedule_seconds
        if not cfg.try_p_max_values:
            return self._schedule_with_pmax(cfg.p_max)
        # Paper: "several values for P_max can be tried so that the best
        # schedule for a loop can be picked" — pick by modelled total time.
        best: Schedule | None = None
        best_cost = math.inf
        for p_max in cfg.p_max_candidates:
            try:
                sched = self._schedule_with_pmax(p_max)
            except SchedulingBudgetExceeded:
                # the watchdog bounds the *whole* search, not one P_max
                raise
            except SchedulingError:
                continue
            cost = estimate_execution_time(
                sched, self.arch, iterations=1000,
                synchronize_memory=not cfg.speculation).total
            if cost < best_cost:
                best, best_cost = sched, cost
        if best is None:
            raise SchedulingError(
                f"TMS failed on {self.ddg.name!r} for every P_max candidate")
        return best

    # -- candidate enumeration ---------------------------------------------

    def _c_delay_min(self) -> int:
        """Smallest meaningful C_delay threshold: ``1 + C_reg_com``
        (Definition 2 with a unit-latency producer issuing in the
        consumer's row)."""
        return 1 + self.arch.reg_comm_latency

    def _c_delay_cap(self, ii: int) -> int:
        """Largest sync delay any single-hop dependence can exhibit at this
        II; beyond it C1 never binds."""
        return ii - 1 + self._max_lat + self.arch.reg_comm_latency

    def _candidates(self) -> list[tuple[float, int, int]]:
        """(F, C_delay, II) triples sorted by increasing F, then C_delay
        (prefer TLP), then II."""
        out: list[tuple[float, int, int]] = []
        cd_min = self._c_delay_min()
        for ii in range(self.mii, self.max_ii() + 1):
            for cd in range(cd_min, self._c_delay_cap(ii) + 1):
                out.append((objective_f(ii, cd, self.arch), cd, ii))
        out.sort()
        return out

    # -- main search ----------------------------------------------------------

    def _schedule_with_pmax(self, p_max: float) -> Schedule:
        tracer = get_tracer()
        metrics.counter(
            "tms.searches", "TMS (II, C_delay) searches started").inc()
        if tracer.enabled:
            tracer.emit("sched", "tms.search", loop=self.ddg.name,
                        p_max=p_max, mii=self.mii, max_ii=self.max_ii(),
                        ncore=self.arch.ncore)
        attempts = 0
        highest_failed_cd: dict[int, int] = {}
        for index, (f_value, cd, ii) in enumerate(self._candidates()):
            self._check_watchdog(attempts)
            if cd <= highest_failed_cd.get(ii, -1):
                if tracer.enabled:
                    self._emit_candidate(tracer, index, ii, cd, f_value,
                                         "pruned")
                continue
            attempts += 1
            if attempts > min(_MAX_ATTEMPTS, self.config.max_candidates):
                if tracer.enabled:
                    tracer.emit("sched", "tms.budget_exhausted",
                                loop=self.ddg.name, attempts=attempts - 1)
                break
            metrics.counter(
                "tms.candidates",
                "TMS (II, C_delay) candidates attempted").inc()
            slots = self._try_tms(ii, cd, p_max)
            if slots is None:
                highest_failed_cd[ii] = cd
                if tracer.enabled:
                    self._emit_candidate(tracer, index, ii, cd, f_value,
                                         "reject")
                continue
            if tracer.enabled:
                self._emit_candidate(tracer, index, ii, cd, f_value, "accept")
            return self._finish(ii, slots, cd, p_max, f_value, fallback=False)
        # Fallback: unconstrained C1 (threshold at cap) and C2 disabled —
        # degenerates to SMS placement; keeps suite runs robust on
        # pathological DDGs.  Recorded in meta.
        for ii in range(self.mii, self.max_ii() + 1):
            self._check_watchdog(attempts)
            cd = self._c_delay_cap(ii)
            slots = self.try_ii(ii)
            if slots is not None:
                metrics.counter(
                    "tms.fallbacks",
                    "TMS searches resolved by the SMS-placement "
                    "fallback").inc()
                if tracer.enabled:
                    tracer.emit("sched", "tms.fallback", loop=self.ddg.name,
                                ii=ii, c_delay=cd, outcome="accept")
                return self._finish(ii, slots, cd, 1.0,
                                    objective_f(ii, cd, self.arch), fallback=True)
        raise SchedulingError(
            f"TMS failed on {self.ddg.name!r}: no schedule up to II "
            f"{self.max_ii()} even without thread-sensitivity constraints")

    def _check_watchdog(self, attempts: int) -> None:
        """Raise :class:`SchedulingBudgetExceeded` once the wall-clock
        budget (``SchedulerConfig.max_schedule_seconds``) is spent, so a
        pathological search degrades instead of hanging the driver."""
        if self._deadline is None or time.monotonic() <= self._deadline:
            return
        metrics.counter(
            "tms.watchdog_fires",
            "TMS searches aborted by the wall-clock watchdog").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.emit("sched", "tms.watchdog", loop=self.ddg.name,
                        attempts=attempts,
                        budget_seconds=self.config.max_schedule_seconds)
        raise SchedulingBudgetExceeded(
            f"TMS search on {self.ddg.name!r} exceeded its "
            f"{self.config.max_schedule_seconds}s budget after "
            f"{attempts} candidate attempts")

    def _emit_candidate(self, tracer, index: int, ii: int, cd: int,
                        f_value: float, outcome: str) -> None:
        """One ``tms.candidate`` event: the (II, C_delay) pair, the full
        ``F`` objective breakdown (its four max-terms), and the outcome
        (``accept`` / ``reject`` / ``pruned``)."""
        arch = self.arch
        tracer.emit(
            "sched", "tms.candidate", loop=self.ddg.name, index=index,
            ii=ii, c_delay=cd, f=f_value,
            f_c_spn=float(arch.spawn_overhead),
            f_c_ci=float(arch.commit_overhead),
            f_c_delay=float(cd),
            f_t_lb_share=t_lower_bound(ii, cd, arch) / arch.ncore,
            outcome=outcome)

    def _finish(self, ii: int, slots: Mapping[str, int], cd: int, p_max: float,
                f_value: float, *, fallback: bool) -> Schedule:
        sched = Schedule(self.ddg, ii, slots, algorithm=self.algorithm_name,
                         meta={"mii": self.mii, "ldp": self.ldp,
                               "c_delay_threshold": cd, "p_max": p_max,
                               "objective_f": f_value, "fallback": fallback})
        validate_schedule(sched, self.resources)
        sched.meta["achieved_c_delay"] = achieved_c_delay(
            sched, self.arch, include_memory=not self.config.speculation)
        sched.meta["p_m"] = kernel_misspec_probability(sched, self.arch)
        return sched

    # -- one TMS scheduling attempt ---------------------------------------------

    def _try_tms(self, ii: int, c_delay: int, p_max: float
                 ) -> dict[str, int] | None:
        """SMS placement with Figure 3's C1/C2 acceptance conditions
        (a :class:`TMSPolicy` over the shared placement engine).

        Two placement passes: seeds anchored at their ASAP first (best
        for small bodies), then anchored at the top of their II range
        (gives deep sink-seeded chains slack against resource conflicts,
        e.g. equake's smvp strands).  The policy's incremental
        Definition-4 state resets between passes (``begin_attempt``).
        """
        policy = TMSPolicy(self._tms_ctx, self.arch, self.config, ii,
                           c_delay, p_max)
        for seed_high in (False, True):
            self.seed_high = seed_high
            slots = self.try_policy(ii, policy)
            if slots is not None:
                return slots
        return None


def schedule_tms(ddg: DDG, resources: ResourceModel, arch: ArchConfig,
                 config: SchedulerConfig | None = None) -> Schedule:
    """Convenience wrapper: TMS-schedule ``ddg``."""
    return ThreadSensitiveScheduler(ddg, resources, arch, config).schedule()
