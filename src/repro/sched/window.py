"""Scheduling-window computation (SMS, Section 4.1 of the paper).

For the node ``v`` being placed against a partial schedule:

* ``Estart`` — earliest legal slot w.r.t. already scheduled *predecessors*:
  ``max(slot(u) + delay(u,v) - II*d(u,v))``;
* ``Lstart`` — latest legal slot w.r.t. already scheduled *successors*:
  ``min(slot(w) - delay(v,w) + II*d(v,w))``.

The window and its scan direction depend on which neighbours are already
scheduled (this is the "swing"): predecessors only → ``[Estart,
Estart+II-1]`` scanned upward (place close after producers); successors only
→ ``[Lstart-II+1, Lstart]`` scanned *downward* (place close before
consumers — the motivating example's ``[7, 0]`` window for ``n6``); both →
``[Estart, min(Lstart, Estart+II-1)]`` upward; neither → ``[ASAP,
ASAP+II-1]`` upward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..graph.ddg import DDG
from ..graph.paths import NodeMetrics

__all__ = ["SchedulingWindow", "compute_window"]


@dataclass(frozen=True)
class SchedulingWindow:
    """An inclusive slot range plus the order in which slots are tried."""

    start: int
    end: int
    direction: str  # "up" | "down"

    def candidates(self) -> list[int]:
        if self.start > self.end:
            return []
        slots = list(range(self.start, self.end + 1))
        if self.direction == "down":
            slots.reverse()
        return slots

    @property
    def empty(self) -> bool:
        return self.start > self.end


def compute_window(ddg: DDG, v: str, partial: Mapping[str, int], ii: int,
                   metrics: Mapping[str, NodeMetrics],
                   order_direction: str = "top-down",
                   seed_high: bool = False) -> SchedulingWindow:
    """The scheduling window of ``v`` against ``partial`` under ``ii``.

    ``order_direction`` is the sweep direction ``v`` was *ordered* in; it
    decides the scan direction when both neighbours are scheduled (SMS
    places bottom-up-ordered nodes as late as possible, near their
    consumers, and top-down-ordered nodes as early as possible).

    ``seed_high`` flips the scan of the unconstrained ("no scheduled
    neighbours") window to descending: the seed anchors at the top of its
    II range, maximising the same-stage headroom left for the feeder
    chains scheduled after it.  TMS uses this — a seed glued to its ASAP
    leaves zero slack, and any resource conflict then pushes a feeder
    across a stage boundary, turning an intra-thread dependence into a
    synchronised one.
    """
    estart: int | None = None
    for e in ddg.preds(v):
        if e.src in partial:
            bound = partial[e.src] + e.delay - ii * e.distance
            estart = bound if estart is None else max(estart, bound)
    lstart: int | None = None
    for e in ddg.succs(v):
        if e.dst in partial:
            bound = partial[e.dst] - e.delay + ii * e.distance
            lstart = bound if lstart is None else min(lstart, bound)

    if estart is not None and lstart is not None:
        if order_direction == "bottom-up":
            return SchedulingWindow(max(estart, lstart - ii + 1), lstart, "down")
        return SchedulingWindow(estart, min(lstart, estart + ii - 1), "up")
    if estart is not None:
        return SchedulingWindow(estart, estart + ii - 1, "up")
    if lstart is not None:
        return SchedulingWindow(lstart - ii + 1, lstart, "down")
    asap = metrics[v].depth
    if seed_high:
        return SchedulingWindow(asap, asap + ii - 1, "down")
    return SchedulingWindow(asap, asap + ii - 1, "up")
