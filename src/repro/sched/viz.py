"""ASCII visualisation of schedules and thread timelines.

Terminal-friendly renderings for inspection, docs and the compile CLI:

* ``kernel_gantt`` — the kernel as a row × functional-unit grid, one cell
  per placed instruction, stage numbers marked;
* ``flat_schedule_chart`` — the one-iteration flat schedule as horizontal
  issue/latency bars, stage boundaries ruled;
* ``thread_timeline`` — SpMT threads (from a traced simulation) as
  per-core occupancy bars, showing spawn cascade, stalls and commit
  serialisation.
"""

from __future__ import annotations

from ..ir.opcode import FUClass
from ..spmt.trace import ThreadRecord
from .schedule import Schedule

__all__ = ["kernel_gantt", "flat_schedule_chart", "thread_timeline"]


def kernel_gantt(schedule: Schedule) -> str:
    """Kernel rows × FU classes, each cell listing the instructions the
    row issues on that class."""
    ddg = schedule.ddg
    classes = [fu for fu in FUClass
               if any(n.opcode.fu_class is fu for n in ddg.nodes)]
    grid: dict[tuple[int, FUClass], list[str]] = {}
    for node in ddg.nodes:
        key = (schedule.row(node.name), node.opcode.fu_class)
        grid.setdefault(key, []).append(
            f"{node.name}/s{schedule.stage(node.name)}")
    col_width = {
        fu: max([len(fu.value)] + [len(" ".join(grid.get((r, fu), [])))
                                   for r in range(schedule.ii)]) + 1
        for fu in classes
    }
    header = "row | " + " | ".join(fu.value.ljust(col_width[fu])
                                   for fu in classes)
    lines = [f"kernel gantt: {ddg.name} (II={schedule.ii}, "
             f"stages={schedule.num_stages})", header,
             "-" * len(header)]
    for r in range(schedule.ii):
        cells = [" ".join(grid.get((r, fu), [])).ljust(col_width[fu])
                 for fu in classes]
        lines.append(f"{r:3d} | " + " | ".join(cells))
    return "\n".join(lines)


def flat_schedule_chart(schedule: Schedule, width: int = 72) -> str:
    """Horizontal bars: issue cycle to completion per instruction, with
    stage boundaries marked by '|'."""
    ddg = schedule.ddg
    span = schedule.span
    scale = max(1.0, span / width)
    boundaries = {round(k * schedule.ii / scale)
                  for k in range(1, schedule.num_stages)}
    name_w = max(len(n.name) for n in ddg.nodes)
    lines = [f"flat schedule: {ddg.name} (span={span}, II={schedule.ii})"]
    for node in sorted(ddg.nodes, key=lambda n: (schedule.slot(n.name),
                                                 n.position)):
        start = int(schedule.slot(node.name) / scale)
        length = max(1, int(node.latency / scale))
        row = [" "] * (int(span / scale) + 1)
        for b in boundaries:
            if b < len(row):
                row[b] = "|"
        for i in range(start, min(start + length, len(row))):
            row[i] = "#"
        lines.append(f"{node.name.rjust(name_w)} "
                     f"[{''.join(row)}] @{schedule.slot(node.name)}")
    return "\n".join(lines)


def thread_timeline(records: list[ThreadRecord], ncore: int,
                    width: int = 72, limit: int = 16) -> str:
    """Per-core occupancy bars for the first ``limit`` committed threads.

    '=' marks execution, '.' the gap to commit; the left edge of each bar
    is the thread's start time.
    """
    records = records[:limit]
    if not records:
        return "(no thread records; run with SimConfig(trace=True))"
    t0 = min(r.start for r in records)
    t1 = max(r.commit for r in records)
    scale = max(1.0, (t1 - t0) / width)
    lines = [f"thread timeline ({len(records)} threads, {ncore} cores, "
             f"1 char ~ {scale:.1f} cycles)"]
    for rec in records:
        start = int((rec.start - t0) / scale)
        run = max(1, int((rec.finish - rec.start) / scale))
        wait = max(0, int((rec.commit - rec.finish) / scale))
        bar = " " * start + "=" * run + "." * wait
        flag = f" !{rec.restarts}" if rec.restarts else ""
        lines.append(f"t{rec.index:<3} c{rec.core} |{bar[:width + 8]}{flag}")
    return "\n".join(lines)
