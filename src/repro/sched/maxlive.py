"""MaxLive: simultaneously live scalar values in the kernel.

The paper's Table 2 metric: "the number of scalar live ranges that are
simultaneously live at a program point".  In an II-periodic schedule a value
born at flat cycle ``b`` and last used at flat cycle ``d`` has
``ceil((d - b) / II)``-ish instances live at once; we count exactly, per
kernel row:

    live(r) = sum over values of |{k >= 0 : b <= r + k*II < d}|
    MaxLive = max over rows r of live(r)

Births are producer issue slots; deaths are the latest consumer issue slot
in flat time (``slot(y) + distance * II``).  TMS's aggressive stage
stretching lengthens lifetimes, which is why the paper reports slightly
larger MaxLive for TMS than SMS.
"""

from __future__ import annotations

from .schedule import Schedule

__all__ = ["max_live"]


def max_live(schedule: Schedule) -> int:
    """MaxLive of ``schedule`` (0 for a kernel producing no register
    values)."""
    ii = schedule.ii
    intervals: list[tuple[int, int]] = []
    for node in schedule.ddg.nodes:
        uses = [e for e in schedule.ddg.succs(node.name) if e.is_register_flow]
        if not uses:
            continue
        birth = schedule.slot(node.name)
        death = max(schedule.slot(e.dst) + e.distance * ii for e in uses)
        if death <= birth:
            death = birth + 1  # zero-length lifetimes still occupy a register
        intervals.append((birth, death))
    if not intervals:
        return 0
    best = 0
    for r in range(ii):
        live = 0
        for birth, death in intervals:
            k0 = max(0, -(-(birth - r) // ii))  # ceil((birth - r) / ii)
            k1 = (death - 1 - r) // ii          # floor((death - 1 - r) / ii)
            if k1 >= k0:
                live += k1 - k0 + 1
        best = max(best, live)
    return best
