"""SpMT thread-program emission.

Renders what the compiler back-end would actually emit for a pipelined
loop (paper Section 3's execution model):

* a **SPAWN** as the first instruction of the thread (it creates the
  thread for the next kernel iteration on the successor core);
* the kernel's instructions row by row, annotated with their stages;
* a **SEND** for each communicated value, placed in the row where the
  producer's result becomes available, and forwarding **COPY**s for
  values travelling more than one ring hop;
* a **RECV** ahead of each synchronised consumer's row;
* prologue/epilogue structure (which stages run before/after the steady
  state: ``num_stages - 1`` ramp-up and ramp-down kernel instances).

This is presentation/inspection machinery — the SpMT simulator consumes
the :class:`~repro.sched.postpass.PipelinedLoop` directly — but it makes
schedules auditable and gives the examples and docs something concrete to
show.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sched.postpass import PipelinedLoop

__all__ = ["ThreadProgram", "generate_thread_program"]


@dataclass(frozen=True)
class ThreadProgram:
    """Textual SpMT thread code for one kernel iteration."""

    name: str
    ii: int
    num_stages: int
    #: per-row lists of rendered instructions (compute + comm pseudo-ops)
    rows: tuple[tuple[str, ...], ...]
    n_spawn: int
    n_send: int
    n_recv: int
    n_copies: int
    prologue_note: str
    epilogue_note: str

    @property
    def instructions_per_iteration(self) -> int:
        return sum(len(r) for r in self.rows)

    def listing(self) -> str:
        lines = [
            f"thread program for {self.name}: II={self.ii}, "
            f"stages={self.num_stages}, "
            f"{self.n_send} SEND / {self.n_recv} RECV / "
            f"{self.n_copies} COPY per iteration",
            f"  prologue: {self.prologue_note}",
        ]
        for r, row in enumerate(self.rows):
            body = "; ".join(row) if row else "(empty)"
            lines.append(f"  row {r:3d}: {body}")
        lines.append(f"  epilogue: {self.epilogue_note}")
        return "\n".join(lines)


def generate_thread_program(pipelined: PipelinedLoop) -> ThreadProgram:
    """Emit the thread program for ``pipelined``."""
    sched = pipelined.schedule
    ddg = sched.ddg
    ii = sched.ii

    rows: list[list[str]] = [[] for _ in range(ii)]

    # the spawn instruction leads the thread (Section 3)
    rows[0].append("SPAWN next-iteration -> successor core")

    # RECVs ahead of synchronised consumers; SENDs at producer completion.
    # Dependences sharing a producer share the communication chain; a
    # d_ker = k value is forwarded through k-1 COPYs in the intervening
    # threads.
    producers: dict[str, int] = {}
    recv_rows: dict[tuple[str, str], int] = {}
    for ch in pipelined.comm.channels:
        producers[ch.edge.src] = max(producers.get(ch.edge.src, 0), ch.hops)
        key = (ch.edge.src, ch.edge.dst)
        recv_rows[key] = sched.row(ch.edge.dst)

    n_send = n_recv = n_copies = 0
    for src, hops in sorted(producers.items()):
        send_row = (sched.row(src) + ddg.latency(src)) % ii
        rows[send_row].append(f"SEND {src} (hops={hops})")
        n_send += 1
        for hop in range(1, hops):
            # the forwarding copy executes in the intermediate thread; we
            # annotate it in the same row the value arrives.
            copy_row = send_row  # arrival row in the next thread's frame
            rows[copy_row].append(f"COPY/forward {src} (hop {hop + 1})")
            n_copies += 1
    for (src, dst), row in sorted(recv_rows.items()):
        rows[row].append(f"RECV {src} -> {dst}")
        n_recv += 1

    # the kernel's compute instructions, with stage annotations and (when
    # the DDG still carries its source loop) full operand rendering
    loop = ddg.loop
    for node in ddg.nodes:
        row = sched.row(node.name)
        stage = sched.stage(node.name)
        if loop is not None:
            text = str(loop.instruction(node.name))
        else:
            text = f"{node.name}: {node.opcode.value}"
        rows[row].append(f"(s{stage}) {text}")

    ramp = sched.num_stages - 1
    return ThreadProgram(
        name=ddg.name,
        ii=ii,
        num_stages=sched.num_stages,
        rows=tuple(tuple(r) for r in rows),
        n_spawn=1,
        n_send=n_send,
        n_recv=n_recv,
        n_copies=n_copies,
        prologue_note=(
            f"{ramp} ramp-up kernel instance(s); live-ins broadcast to all "
            f"cores before entry" if ramp else
            "none (single-stage kernel); live-ins broadcast before entry"),
        epilogue_note=(
            f"{ramp} ramp-down kernel instance(s); head thread commits, "
            f"write buffer drains" if ramp else
            "none (single-stage kernel)"),
    )
