"""Huff's lifetime-sensitive modulo scheduling (PLDI'93) — the paper's
reference [9], implemented as a third baseline.

Huff schedules operations in order of *dynamic slack*: after every
placement, earliest/latest start bounds (``Estart``/``Lstart``) are
re-propagated through the dependence graph, and the op with the least
freedom goes next.  Placement is bidirectional — ops pulled on by their
producers are placed as early as possible, ops feeding already-placed
consumers as late as possible — which is what keeps value lifetimes short
(the "lifetime-sensitive" in the title, and the strategy the TMS paper
groups with SMS as "tightly scheduled" / "lifetime-minimal").

When an op has no conflict-free slot in its window it is force-placed at
its earliest bound and conflicting ops are ejected (the same eviction
discipline as Rau's IMS, shared via the unified engine's
:class:`~repro.sched.engine.PlacementEngine`), under a per-II budget.
"""

from __future__ import annotations

from ..config import SchedulerConfig
from ..errors import SchedulingError
from ..graph.ddg import DDG
from ..graph.mii import compute_mii
from ..graph.paths import compute_metrics, longest_dependence_path
from ..machine.resources import ResourceModel
from .engine import PartialSchedule, PlacementEngine
from .schedule import Schedule, validate_schedule

__all__ = ["HuffModuloScheduler", "schedule_huff"]

_II_SLACK = 16
#: Lstart horizon for ops with no scheduled downstream anchor.
_HORIZON_STAGES = 4


class HuffModuloScheduler:
    """Slack-driven bidirectional modulo scheduling."""

    algorithm_name = "Huff"

    def __init__(self, ddg: DDG, resources: ResourceModel,
                 config: SchedulerConfig | None = None) -> None:
        self.ddg = ddg
        self.resources = resources
        self.config = config or SchedulerConfig()
        self.metrics = compute_metrics(ddg)
        self.mii = compute_mii(ddg, resources)
        self.ldp = longest_dependence_path(ddg)
        self.engine = PlacementEngine(ddg, resources, self.metrics)

    def max_ii(self) -> int:
        base = max(self.mii, self.ldp)
        return int(base * self.config.max_ii_factor) + _II_SLACK

    def schedule(self) -> Schedule:
        for ii in range(self.mii, self.max_ii() + 1):
            slots = self._try_ii(ii)
            if slots is not None:
                sched = Schedule(self.ddg, ii, slots,
                                 algorithm=self.algorithm_name,
                                 meta={"mii": self.mii, "ldp": self.ldp})
                validate_schedule(sched, self.resources)
                return sched
        raise SchedulingError(
            f"Huff failed on {self.ddg.name!r}: no valid schedule with "
            f"II <= {self.max_ii()}")

    # -- bound propagation -------------------------------------------------

    def _bounds(self, ii: int, placed: dict[str, int]
                ) -> tuple[dict[str, int], dict[str, int]]:
        """Dynamic Estart/Lstart for every node (relaxation to fixpoint)."""
        names = self.ddg.node_names
        horizon = self.ldp + _HORIZON_STAGES * ii
        est = {n: (placed[n] if n in placed else self.metrics[n].depth)
               for n in names}
        lst = {n: (placed[n] if n in placed else
                   horizon - self.metrics[n].height)
               for n in names}
        for _ in range(len(names)):
            changed = False
            for e in self.ddg.edges:
                lo = est[e.src] + e.delay - ii * e.distance
                if e.dst not in placed and lo > est[e.dst]:
                    est[e.dst] = lo
                    changed = True
                hi = lst[e.dst] - e.delay + ii * e.distance
                if e.src not in placed and hi < lst[e.src]:
                    lst[e.src] = hi
                    changed = True
            if not changed:
                break
        return est, lst

    # -- one attempt -----------------------------------------------------------

    def _try_ii(self, ii: int) -> dict[str, int] | None:
        budget = self.config.budget_ratio_ii * len(self.ddg) + 32
        ctx = self.engine.ctx
        table = self.engine.windows.table(ii)
        pred = table.pred
        succ = table.succ
        self_blocked = table.self_blocked
        ps = PartialSchedule(ctx, ii)
        placed = ps.slots
        n_nodes = len(ctx.node_names)
        force_floor: dict[str, int] = {n: -(10 ** 9) for n in ctx.node_names}
        position = ctx.position

        while len(placed) < n_nodes:
            if budget <= 0:
                return None
            budget -= 1
            est, lst = self._bounds(ii, placed)
            unplaced = [n for n in ctx.node_names if n not in placed]
            # least dynamic slack first; ties by program order
            v = min(unplaced, key=lambda n: (lst[n] - est[n], position[n]))
            lo, hi = est[v], lst[v]
            if hi < lo:
                hi = lo + ii - 1  # inconsistent bounds: fall back to a window
            # bidirectional placement: ops anchored from above go early,
            # ops anchored from below go late
            preds_v = pred[v]
            anchored_up = any(src in placed for src, _d in preds_v)
            anchored_down = any(dst in placed for dst, _d in succ[v])
            candidates = range(lo, min(hi, lo + ii - 1) + 1)
            if anchored_down and not anchored_up:
                candidates = reversed(list(candidates))
            slot = None
            if not self_blocked[v]:
                for cycle in candidates:
                    if cycle <= force_floor[v]:
                        continue
                    deps_ok = True
                    for src, delta in preds_v:
                        s = placed.get(src)
                        if s is not None and cycle < s + delta:
                            deps_ok = False
                            break
                    if deps_ok and ps.fits(v, cycle):
                        slot = cycle
                        break
            if slot is None:
                slot = max(lo, force_floor[v] + 1)
                PlacementEngine._evict_conflicts(ps, v, slot, None)
                force_floor[v] = slot
            if v in placed:  # pragma: no cover - defensive
                ps.remove(v)
            ps.place(v, slot)
            # eject dependence-violating already-placed neighbours
            for dst, delta in succ[v]:
                s = placed.get(dst)
                if s is not None and s < slot - delta:
                    ps.remove(dst)
            for src, delta in preds_v:
                s = placed.get(src)
                if s is not None and slot < s + delta:
                    ps.remove(src)
        return placed


def schedule_huff(ddg: DDG, resources: ResourceModel,
                  config: SchedulerConfig | None = None) -> Schedule:
    """Convenience wrapper: Huff-schedule ``ddg``."""
    return HuffModuloScheduler(ddg, resources, config).schedule()
