"""Modulo schedulers and scheduling support.

* :mod:`repro.sched.schedule` — the :class:`Schedule` produced by every
  scheduler: absolute issue slots, stages, kernel rows, kernel distances
  (Definition 1), and a validator.
* :mod:`repro.sched.ordering` — SMS node ordering (SCC-prioritised swing
  order).
* :mod:`repro.sched.sms` — Swing Modulo Scheduling (Llosa, PACT'96), the
  baseline the paper builds on (GCC 4.1.1's implementation).
* :mod:`repro.sched.tms` — Thread-sensitive Modulo Scheduling (the paper's
  contribution, Figure 3).
* :mod:`repro.sched.ims` — Rau's iterative modulo scheduling, an extra
  baseline.
* :mod:`repro.sched.listsched` — acyclic list scheduling for the
  single-threaded comparison (Figure 5).
* :mod:`repro.sched.postpass` — modulo variable expansion (register
  copies), SEND/RECV insertion, MaxLive.
* :mod:`repro.sched.pipeline_exec` — semantic equivalence checker that
  replays a schedule against the reference interpreter.
"""

from .schedule import Schedule, validate_schedule
from .ordering import compute_node_order, partition_into_sets
from .sms import SwingModuloScheduler, schedule_sms
from .tms import ThreadSensitiveScheduler, schedule_tms
from .ims import IterativeModuloScheduler, schedule_ims
from .huff import HuffModuloScheduler, schedule_huff
from .listsched import ListSchedule, list_schedule
from .postpass import CommPlan, PipelinedLoop, run_postpass
from .maxlive import max_live
from .codegen import ThreadProgram, generate_thread_program
from .regalloc import RegisterAllocation, allocate_registers
from .viz import flat_schedule_chart, kernel_gantt, thread_timeline

__all__ = [
    "CommPlan",
    "HuffModuloScheduler",
    "IterativeModuloScheduler",
    "ListSchedule",
    "PipelinedLoop",
    "RegisterAllocation",
    "Schedule",
    "SwingModuloScheduler",
    "ThreadProgram",
    "ThreadSensitiveScheduler",
    "compute_node_order",
    "generate_thread_program",
    "list_schedule",
    "max_live",
    "partition_into_sets",
    "run_postpass",
    "schedule_huff",
    "schedule_ims",
    "schedule_sms",
    "allocate_registers",
    "schedule_tms",
    "validate_schedule",
    "flat_schedule_chart",
    "kernel_gantt",
    "thread_timeline",
]
