"""Modulo schedulers and scheduling support.

* :mod:`repro.sched.engine` — the unified placement engine: incremental
  partial schedules, memoized dependence windows, and the pluggable
  :class:`~repro.sched.engine.SlotPolicy` protocol every scheduler here
  runs on (see ``docs/scheduling.md``).
* :mod:`repro.sched.schedule` — the :class:`Schedule` produced by every
  scheduler: absolute issue slots, stages, kernel rows, kernel distances
  (Definition 1), and a validator.
* :mod:`repro.sched.ordering` — SMS node ordering (SCC-prioritised swing
  order).
* :mod:`repro.sched.sms` — Swing Modulo Scheduling (Llosa, PACT'96), the
  baseline the paper builds on (GCC 4.1.1's implementation).
* :mod:`repro.sched.tms` — Thread-sensitive Modulo Scheduling (the paper's
  contribution, Figure 3).
* :mod:`repro.sched.ims` — Rau's iterative modulo scheduling, an extra
  baseline.
* :mod:`repro.sched.degrade` — the TMS -> SMS -> IMS -> SEQ degradation
  chain and policy dispatch (``SchedulerConfig.policy``).
* :mod:`repro.sched.listsched` — acyclic list scheduling for the
  single-threaded comparison (Figure 5).
* :mod:`repro.sched.postpass` — modulo variable expansion (register
  copies), SEND/RECV insertion, MaxLive.
* :mod:`repro.sched.pipeline_exec` — semantic equivalence checker that
  replays a schedule against the reference interpreter.
"""

import warnings

from .schedule import Schedule, validate_schedule
from .engine import (
    EngineContext,
    HookPolicy,
    PartialSchedule,
    PlacementEngine,
    SlotPolicy,
    TMSPolicy,
    WindowService,
)
from .sms import SwingModuloScheduler, schedule_sms
from .tms import ThreadSensitiveScheduler, schedule_tms
from .ims import IterativeModuloScheduler, schedule_ims
from .huff import HuffModuloScheduler, schedule_huff
from .degrade import (
    schedule_sequential_fallback,
    schedule_with_degradation,
    schedule_with_policy,
)
from .listsched import ListSchedule, list_schedule
from .postpass import CommPlan, PipelinedLoop, run_postpass
from .maxlive import max_live
from .codegen import ThreadProgram, generate_thread_program
from .regalloc import RegisterAllocation, allocate_registers
from .viz import flat_schedule_chart, kernel_gantt, thread_timeline

__all__ = [
    "CommPlan",
    "EngineContext",
    "HookPolicy",
    "HuffModuloScheduler",
    "IterativeModuloScheduler",
    "ListSchedule",
    "PartialSchedule",
    "PipelinedLoop",
    "PlacementEngine",
    "RegisterAllocation",
    "Schedule",
    "SlotPolicy",
    "SwingModuloScheduler",
    "TMSPolicy",
    "ThreadProgram",
    "ThreadSensitiveScheduler",
    "WindowService",
    "allocate_registers",
    "flat_schedule_chart",
    "generate_thread_program",
    "kernel_gantt",
    "list_schedule",
    "max_live",
    "run_postpass",
    "schedule_huff",
    "schedule_ims",
    "schedule_sequential_fallback",
    "schedule_sms",
    "schedule_tms",
    "schedule_with_degradation",
    "schedule_with_policy",
    "thread_timeline",
    "validate_schedule",
]

#: ordering internals previously re-exported here; import them from
#: :mod:`repro.sched.ordering` instead.
_DEPRECATED = {
    "compute_node_order": "repro.sched.ordering",
    "partition_into_sets": "repro.sched.ordering",
}


def __getattr__(name: str):
    home = _DEPRECATED.get(name)
    if home is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}")
    warnings.warn(
        f"importing {name!r} from {__name__!r} is deprecated; "
        f"import it from {home!r}",
        DeprecationWarning, stacklevel=2)
    from . import ordering
    return getattr(ordering, name)
