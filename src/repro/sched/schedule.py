"""Schedule representation shared by all modulo schedulers.

A schedule maps every DDG node to an absolute issue slot under a fixed II.
Derived quantities follow the paper:

* ``row(v) = slot(v) % II`` — issue cycle within the kernel;
* ``stage(v) = slot(v) // II`` — the stage number ``s_v``;
* ``d_ker(u, v) = d(u, v) + s_v - s_u`` — Definition 1, the dependence
  distance *in the kernel*; inter-iteration (= inter-thread on the SpMT
  machine) dependences are those with ``d_ker >= 1``.

Slots are normalised so the minimum stage is 0 (shifting by a multiple of II
keeps every row, and therefore every sync delay, unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ScheduleValidationError
from ..graph.ddg import DDG
from ..graph.dependence import Dependence, DepType
from ..machine.reservation import ModuloReservationTable
from ..machine.resources import ResourceModel

__all__ = ["Schedule", "validate_schedule"]


@dataclass(frozen=True)
class Schedule:
    """An II-periodic schedule of ``ddg``.

    ``meta`` carries algorithm-specific data (e.g. TMS's chosen ``C_delay``
    threshold and ``P_max``).
    """

    ddg: DDG
    ii: int
    slots: Mapping[str, int]
    algorithm: str = "unknown"
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ii < 1:
            raise ScheduleValidationError(f"II must be >= 1, got {self.ii}")
        missing = set(self.ddg.node_names) - set(self.slots)
        if missing:
            raise ScheduleValidationError(
                f"schedule for {self.ddg.name!r} misses nodes {sorted(missing)}")
        extra = set(self.slots) - set(self.ddg.node_names)
        if extra:
            raise ScheduleValidationError(
                f"schedule for {self.ddg.name!r} has unknown nodes {sorted(extra)}")
        object.__setattr__(self, "slots", dict(self.slots))
        self._normalise()

    def _normalise(self) -> None:
        """Shift all slots by a multiple of II so the minimum stage is 0."""
        slots = self.slots
        min_slot = min(slots.values())
        shift = (-min_slot + self.ii - 1) // self.ii * self.ii if min_slot < 0 else \
            -(min_slot // self.ii) * self.ii
        if shift:
            object.__setattr__(
                self, "slots", {k: v + shift for k, v in slots.items()})

    # -- basic accessors -----------------------------------------------------

    def slot(self, name: str) -> int:
        return self.slots[name]

    def row(self, name: str) -> int:
        """Issue cycle within the kernel (``issue_slot % II``)."""
        return self.slots[name] % self.ii

    def stage(self, name: str) -> int:
        """Stage number ``s_v``."""
        return self.slots[name] // self.ii

    @property
    def num_stages(self) -> int:
        return max(self.stage(n) for n in self.slots) + 1

    @property
    def span(self) -> int:
        """Completion time of the flat one-iteration schedule."""
        return max(self.slots[n.name] + n.latency for n in self.ddg.nodes)

    def d_ker(self, edge: Dependence) -> int:
        """Definition 1: kernel distance of a dependence."""
        return edge.distance + self.stage(edge.dst) - self.stage(edge.src)

    # -- kernel structure ------------------------------------------------------

    def kernel_rows(self) -> list[list[str]]:
        """Instructions grouped by kernel row, each row sorted by stage then
        position (a readable kernel listing)."""
        rows: list[list[str]] = [[] for _ in range(self.ii)]
        for node in self.ddg.nodes:
            rows[self.row(node.name)].append(node.name)
        for row in rows:
            row.sort(key=lambda n: (self.stage(n), self.ddg.node(n).position))
        return rows

    def kernel_listing(self) -> str:
        lines = [f"kernel of {self.ddg.name} (II={self.ii}, "
                 f"stages={self.num_stages}, alg={self.algorithm})"]
        for r, names in enumerate(self.kernel_rows()):
            cells = ", ".join(f"{n}(s{self.stage(n)})" for n in names)
            lines.append(f"  row {r:3d}: {cells}")
        return "\n".join(lines)

    # -- dependence classification (Definition 4) ---------------------------

    def inter_iteration_register_deps(self) -> list[Dependence]:
        """``RegDep`` over all nodes: inter-iteration register flow
        dependences that appear in the kernel (``d_ker >= 1``)."""
        return [e for e in self.ddg.edges
                if e.is_register_flow and self.d_ker(e) >= 1]

    def inter_iteration_memory_deps(self) -> list[Dependence]:
        """``MemDep`` over all nodes: inter-iteration memory flow
        dependences (``d_ker >= 1``) — the speculated dependences."""
        return [e for e in self.ddg.edges
                if e.is_memory_flow and self.d_ker(e) >= 1]


def validate_schedule(schedule: Schedule, resources: ResourceModel) -> None:
    """Check every dependence and resource constraint; raise on violation.

    For every edge: ``slot(dst) >= slot(src) + delay - II * distance``.
    Resource usage is replayed into a fresh modulo reservation table.
    """
    ii = schedule.ii
    for e in schedule.ddg.edges:
        lhs = schedule.slot(e.dst)
        rhs = schedule.slot(e.src) + e.delay - ii * e.distance
        if lhs < rhs:
            raise ScheduleValidationError(
                f"{schedule.ddg.name}: dependence {e} violated: "
                f"slot({e.dst})={lhs} < slot({e.src})+delay-II*d={rhs} (II={ii})")
    mrt = ModuloReservationTable(ii, resources)
    for node in schedule.ddg.nodes:
        cycle = schedule.slot(node.name)
        if not mrt.fits(node.name, node.opcode, cycle):
            raise ScheduleValidationError(
                f"{schedule.ddg.name}: resource conflict placing {node.name} "
                f"({node.opcode.name}) at cycle {cycle} (row {cycle % ii}, II={ii})")
        mrt.place(node.name, node.opcode, cycle)
