"""The seven selected DOACROSS loops of Table 3.

Four benchmarks contribute loops that the paper examines in detail
(Section 5.2): art (4 loops, two of them 11-instruction bodies unrolled
four times), equake (the smvp sparse matrix-vector loop, 58.5% of program
time), lucas (a recurrence-bound FFT-arithmetic loop) and fma3d (an element
force-update loop).  All are DOACROSS: every one carries cross-iteration
register and/or memory dependences, which is precisely what defeats DOALL
parallelisers and what TMS targets.

We reconstruct each loop to match Table 3's structural statistics:

=========  ======  =====  ========  =======  ====  ====
benchmark  #loops  LC     avg inst  avg SCC  MII   LDP
=========  ======  =====  ========  =======  ====  ====
art        4       21.6%  27        3        11    29
equake     1       58.5%  82        3        20    26
lucas      1       33.4%  102       8        62    89
fma3d      1       14.3%  72        3        18    34
=========  ======  =====  ========  =======  ====  ====

equake's and fma3d's MIIs are resource-bound (their large bodies saturate
the 4-wide issue), art's sits where its accumulator and scatter recurrences
put it, and lucas's is dominated by a 62-cycle probability-1 carry
recurrence — so its ``C_delay`` cannot drop below its MII, reproducing the
paper's observation that lucas's synchronisation-stall reduction is the
least impressive.

Every indirect load declares alias hints against *all* stores that may
touch its array (a hint is our stand-in for one profiled dependence
probability; see DESIGN.md): tiny probabilities (3-6 x 10^-5), matching the
paper's report that TMS keeps the misspeculation frequency of these loops
under 0.1%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ir.builder import LoopBuilder
from ..ir.instruction import AliasHint
from ..ir.loop import Loop
from ..ir.opcode import Opcode
from ..ir.operand import Reg

__all__ = ["SelectedLoop", "DOACROSS_LOOPS", "selected_loops"]

_N = 512  # array extent for all selected loops


@dataclass(frozen=True)
class SelectedLoop:
    """One Table-3 loop plus its paper-reported statistics."""

    loop: Loop
    benchmark: str
    coverage: float       # this loop's share of whole-program time
    paper_mii: float
    paper_ldp: float
    paper_tms_ii: float
    paper_tms_maxlive: float
    paper_tms_cdelay: float
    note: str = ""


def _hints(stores: list[str], probability: float) -> tuple[AliasHint, ...]:
    return tuple(AliasHint(s, distance=1, probability=probability)
                 for s in stores)


# ---------------------------------------------------------------------------
# art — neural-network simulation (scanner match/train loops)
# ---------------------------------------------------------------------------

def _art_match_loop(name: str, units: int) -> Loop:
    """ART f1-layer update: one 11-instruction unit (load bottom-up and
    top-down weights, combine, fold into the activity accumulator, scatter
    the f1 activity through a per-unit pointer); Table 3's first two loops
    are this body unrolled four times.

    The y-accumulator chain contributes 2 cycles per unit (8 total after
    unrolling); the scatter load/store circuit contributes ~12, so MII ~ 12
    vs. the paper's 11.
    """
    live: dict[str, float] = {"y": 0.5, "decay": 0.9, "gain": 1.1,
                              "bias": 0.01}
    for u in range(units):
        live[f"p{u}"] = float(3 + 14 * u)
    b = LoopBuilder(name, arrays={"BUS": _N, "TDS": _N, "F1": _N},
                    live_ins=live)
    all_stores = [f"u{u}_n10" for u in range(units)]
    for u in range(units):
        s = f"u{u}_"
        b.load(s + "n0", s + "bu", "BUS", coeff=units, offset=u)
        b.load(s + "n1", s + "td", "TDS", coeff=units, offset=u)
        b.op(s + "n2", Opcode.FMUL, s + "w", s + "bu", s + "td")
        # f1 activity read: may alias any unit's scatter from an earlier
        # iteration (pointers advance by equal strides, so collisions are
        # rare — the declared 5e-4).
        b.load(s + "n3", s + "f", "F1", index_reg=Reg(f"p{u}"),
               alias_hints=_hints(all_stores, 0.00005))
        b.op(s + "n4", Opcode.FMUL, s + "wd", s + "w", "decay")
        b.op(s + "n5", Opcode.FADD, s + "wg", s + "wd", "bias")
        b.op(s + "n6", Opcode.FADD, s + "fn", s + "f", s + "w")
        b.op(s + "n7", Opcode.FMUL, s + "fs", s + "fn", "gain")
        # reads last iteration's y (the accumulator is defined below)
        b.op(s + "n8", Opcode.FADD, s + "ts", s + "fs", "y")
        b.store(s + "n10", "F1", Reg(s + "ts"), index_reg=Reg(f"p{u}"))
    # the unrolled y updates are tree-reassociated so the loop-carried
    # accumulator cycle is a single 2-cycle add (any good compiler does
    # this; it is what keeps the paper's C_delay near its 5-cycle floor).
    b.op("t01", Opcode.FADD, "s01", "u0_wg", "u1_wg")
    b.op("t23", Opcode.FADD, "s23", "u2_wg", "u3_wg")
    b.op("tsum", Opcode.FADD, "stot", "s01", "s23")
    b.op("yacc", Opcode.FADD, "y", "y", "stot")
    for u in range(units):
        b.op(f"ctr{u}", Opcode.IADD, f"p{u}", f"p{u}", 7)
    return b.build()


def _art_small_loop(name: str) -> Loop:
    """ART winner-search style loop (~16 instructions): a max-reduction
    recurrence, a pointer-chased weight update, and a prediction written to
    a separate output vector."""
    b = LoopBuilder(name, arrays={"ACT": _N, "WIN": _N, "OUT": _N},
                    live_ins={"m": 0.0, "q": 5.0, "scale": 1.5, "th": 0.25})
    b.load("n0", "a", "ACT", coeff=1, offset=0)
    b.op("n1", Opcode.FMUL, "as_", "a", "scale")
    b.op("n2", Opcode.FSUB, "d", "as_", "th")
    b.op("n3", Opcode.FMUL, "d2", "d", "d")
    b.op("n4", Opcode.FMAX, "m", "m", "d2")          # max recurrence
    b.load("n5", "wv", "WIN", index_reg=Reg("q"),
           alias_hints=_hints(["n9"], 0.00003))
    b.op("n6", Opcode.FADD, "wn", "wv", "d")
    b.op("n7", Opcode.FADD, "wm", "wn", 0.75)
    b.op("n8", Opcode.FADD, "ws", "wm", "m")
    b.store("n9", "WIN", Reg("ws"), index_reg=Reg("q"))
    b.load("n10", "a2", "ACT", coeff=1, offset=1)
    b.op("n11", Opcode.FADD, "p1", "a2", "d")
    b.op("n12", Opcode.FADD, "p2", "p1", "wn")
    b.op("n13", Opcode.FADD, "p3", "p2", 1.25)
    b.store("n14", "OUT", Reg("p3"), coeff=1, offset=0)
    b.op("ctr", Opcode.IADD, "q", "q", 3)
    return b.build()


# ---------------------------------------------------------------------------
# equake — smvp: sparse matrix-vector product with scatter updates
# ---------------------------------------------------------------------------

def _equake_smvp_loop() -> Loop:
    """The smvp kernel: walk six nonzeros of the sparse row, accumulate
    ``A*v`` into two interleaved partial sums, and scatter symmetric
    contributions into ``w[col]`` through indirect column indices — any
    scatter may feed any gather an iteration later (the speculated
    dependences, all hinted at ~4e-4)."""
    b = LoopBuilder("equake_smvp",
                    arrays={"AV": _N, "V": _N, "W": _N, "COL": _N},
                    live_ins={"sum0": 0.0, "sum1": 0.0, "anext": 2.0,
                              "c0": 1.0})
    w_stores = [f"e{e}_n12" for e in range(6)]
    for e in range(6):
        s = f"e{e}_"
        b.load(s + "n0", s + "colf", "COL", coeff=6, offset=e)
        # spread the data-dependent index over the array (column indices)
        b.op(s + "n1", Opcode.FMUL, s + "col", s + "colf", 340.0)
        b.load(s + "n2", s + "a", "AV", coeff=6, offset=e)
        b.load(s + "n3", s + "v", "V", index_reg=Reg(s + "col"))
        b.op(s + "n4", Opcode.FMUL, s + "av", s + "a", s + "v")
        # symmetric scatter: w[col] += a * vrow
        b.load(s + "n6", s + "vr", "V", coeff=1, offset=0)
        b.op(s + "n7", Opcode.FMUL, s + "avr", s + "a", s + "vr")
        b.load(s + "n8", s + "w", "W", index_reg=Reg(s + "col"),
               alias_hints=_hints(w_stores, 0.00004))
        b.op(s + "n9", Opcode.FADD, s + "wn", s + "w", s + "avr")
        b.op(s + "n10", Opcode.FMUL, s + "ws", s + "wn", 0.5)
        b.op(s + "n11", Opcode.FADD, s + "wf", s + "ws", s + "av")
        b.store(s + "n12", "W", Reg(s + "wf"), index_reg=Reg(s + "col"))
    # tree-reassociated row sums: two accumulators, each a single-add
    # loop-carried cycle (keeps C_delay near its floor, like the paper's)
    b.op("q0", Opcode.FADD, "pa0", "e0_av", "e2_av")
    b.op("q1", Opcode.FADD, "pt0", "pa0", "e4_av")
    b.op("q2", Opcode.FADD, "sum0", "sum0", "pt0")
    b.op("q3", Opcode.FADD, "pa1", "e1_av", "e3_av")
    b.op("q4", Opcode.FADD, "pt1", "pa1", "e5_av")
    b.op("q5", Opcode.FADD, "sum1", "sum1", "pt1")
    # row pointer chase: a single-add register recurrence
    b.op("r0", Opcode.FADD, "t0", "sum0", "sum1")
    b.op("r1", Opcode.FADD, "t1", "t0", 6.0)
    b.op("r2", Opcode.FADD, "anext", "anext", "t1")
    b.op("ctr0", Opcode.IADD, "c0", "c0", 1)
    return b.build()


# ---------------------------------------------------------------------------
# lucas — FFT-squaring arithmetic with a long carry recurrence
# ---------------------------------------------------------------------------

def _lucas_fft_loop() -> Loop:
    """Lucas-Lehmer FFT squaring inner loop: eight butterflies feeding a
    62-cycle carry-propagation recurrence (2 divides, 5 multiplies, adds),
    plus per-butterfly-pair accumulators and an error tracker — 8
    non-trivial SCCs in total, MII = RecII = 62 >> ResMII (~26), and
    C_delay ~ MII: TMS cannot buy TLP here, only ILP (the paper's
    analysis)."""
    b = LoopBuilder("lucas_fft",
                    arrays={"XR": _N, "XI": _N, "WR": _N, "WI": _N,
                            "CARRY": _N},
                    live_ins={"carry": 0.0, "err": 0.0, "base": 65536.0,
                              "inv": 1.0 / 65536.0, "k0": 5.0,
                              "bs0": 0.0, "bs1": 0.0, "bs2": 0.0, "bs3": 0.0})
    # carry recurrence: 12+4+2+4+12+4+2+4+2+4+2+4+2+4 = 62 cycles
    b.op("c0", Opcode.FDIV, "q0", "carry", "base")        # 12
    b.op("c1", Opcode.FMUL, "q1", "q0", "base")           # 4
    b.op("c2", Opcode.FSUB, "q2", "carry", "q1")          # 2
    b.op("c3", Opcode.FMUL, "q3", "q2", "q2")             # 4
    b.op("c4", Opcode.FDIV, "q4", "q3", "base")           # 12
    b.op("c5", Opcode.FMUL, "q5", "q4", "inv")            # 4
    b.op("c6", Opcode.FADD, "q6", "q5", "q2")             # 2
    b.op("c7", Opcode.FMUL, "q7", "q6", 0.5)              # 4
    b.op("c8", Opcode.FADD, "q8", "q7", 1.0)              # 2
    b.op("c9", Opcode.FMUL, "q9", "q8", "inv")            # 4
    b.op("c10", Opcode.FADD, "q10", "q9", "q0")           # 2
    b.op("c11", Opcode.FMUL, "q11", "q10", 2.0)           # 4
    b.op("c12", Opcode.FADD, "q12", "q11", 0.125)         # 2
    b.op("c13", Opcode.FMUL, "carry", "q12", 0.5)         # 4 -> 62
    # carry also flows through memory with probability 1 (exact d=1)
    b.load("m0", "cprev", "CARRY", coeff=1, offset=0)
    b.op("m1", Opcode.FADD, "cnext", "cprev", "carry")
    b.store("m2", "CARRY", Reg("cnext"), coeff=1, offset=1)
    # 8 butterflies x 9 ops; butterfly pairs fold into 4 accumulators
    for k in range(8):
        s = f"b{k}_"
        b.load(s + "n0", s + "xr", "XR", coeff=8, offset=k)
        b.load(s + "n1", s + "xi", "XI", coeff=8, offset=k)
        b.load(s + "n2", s + "wr", "WR", coeff=8, offset=k)
        b.load(s + "n3", s + "wi", "WI", coeff=8, offset=k)
        b.op(s + "n4", Opcode.FMUL, s + "t0", s + "xr", s + "wr")
        b.op(s + "n5", Opcode.FMUL, s + "t1", s + "xi", s + "wi")
        b.op(s + "n6", Opcode.FSUB, s + "re", s + "t0", s + "t1")
        b.op(s + "n7", Opcode.FADD, s + "sc", s + "re", "carry")
        b.store(s + "n8", "XR", Reg(s + "sc"), coeff=8, offset=k)
    for k in range(4):
        b.op(f"acc{k}", Opcode.FADD, f"bs{k}", f"bs{k}", f"b{2 * k}_re")
    # twiddle-correction tail on butterfly 0: deepens the LDP toward the
    # paper's 89 (the carry chain feeds it).
    b.op("t0", Opcode.FMUL, "tw0", "b0_sc", "b0_wr")      # 4
    b.op("t1", Opcode.FADD, "tw1", "tw0", "b0_t1")        # 2
    b.op("t2", Opcode.FMUL, "tw2", "tw1", "inv")          # 4
    b.op("t3", Opcode.FADD, "tw3", "tw2", "q12")          # 2
    b.op("t4", Opcode.FMUL, "tw4", "tw3", 1.5)            # 4
    b.store("t5", "XI", Reg("tw4"), coeff=8, offset=0)
    # error tracking + counter self-recurrences
    b.op("s0", Opcode.FMAX, "err", "err", "q2")
    b.op("s1", Opcode.IADD, "k0", "k0", 3)
    return b.build()


# ---------------------------------------------------------------------------
# fma3d — element force update (platq / material stress)
# ---------------------------------------------------------------------------

def _fma3d_force_loop() -> Loop:
    """fma3d's platq element force computation: strain rates from nodal
    velocities, stress integration (a multiply-accumulate recurrence per
    stress component), an hourglass-control tail, and scatter of nodal
    forces through the element connectivity (indirect, speculated)."""
    b = LoopBuilder("fma3d_force",
                    arrays={"VX": _N, "VY": _N, "STRESS": _N, "FORCE": _N,
                            "IX": _N},
                    live_ins={"sx": 0.1, "sy": 0.2, "sxy": 0.05,
                              "dt": 0.01, "em": 2.1, "hg": 0.0})
    f_stores = [f"f{nidx}_n7" for nidx in range(4)]
    # strain rates from 4 nodes x 5 ops = 20
    for nidx in range(4):
        s = f"g{nidx}_"
        b.load(s + "n0", s + "vx", "VX", coeff=4, offset=nidx)
        b.load(s + "n1", s + "vy", "VY", coeff=4, offset=nidx)
        b.op(s + "n2", Opcode.FMUL, s + "ex", s + "vx", 0.25)
        b.op(s + "n3", Opcode.FMUL, s + "ey", s + "vy", 0.25)
        b.op(s + "n4", Opcode.FADD, s + "exy", s + "ex", s + "ey")
    # stress integration: three MAC recurrences (sx, sy, sxy) x 3 ops = 9
    b.op("sx0", Opcode.FMUL, "dsx", "g0_ex", "em")
    b.op("sx1", Opcode.FMUL, "dsxt", "dsx", "dt")
    b.op("sx2", Opcode.FADD, "sx", "sx", "dsxt")
    b.op("sy0", Opcode.FMUL, "dsy", "g1_ey", "em")
    b.op("sy1", Opcode.FMUL, "dsyt", "dsy", "dt")
    b.op("sy2", Opcode.FADD, "sy", "sy", "dsyt")
    b.op("so0", Opcode.FMUL, "dso", "g2_exy", "em")
    b.op("so1", Opcode.FMUL, "dsot", "dso", "dt")
    b.op("so2", Opcode.FADD, "sxy", "sxy", "dsot")
    # stress store + von-Mises proxy = 4
    b.store("st0", "STRESS", Reg("sx"), coeff=3, offset=0)
    b.store("st1", "STRESS", Reg("sy"), coeff=3, offset=1)
    b.store("st2", "STRESS", Reg("sxy"), coeff=3, offset=2)
    b.op("st3", Opcode.FADD, "svm", "sx", "sy")
    # hourglass-control tail (6 ops; accumulator recurrence through hg)
    b.op("h0", Opcode.FSUB, "h_d", "g3_exy", "g0_exy")
    b.op("h1", Opcode.FMUL, "h_q", "h_d", "h_d")
    b.op("h2", Opcode.FMUL, "h_s", "h_q", 0.01)
    b.op("h3", Opcode.FADD, "hg", "hg", "h_s")
    b.op("h4", Opcode.FMUL, "h_f", "hg", 0.1)
    b.op("h5", Opcode.FADD, "svh", "svm", "h_f")
    # nodal force scatter: 4 nodes x 8 ops = 32 (indirect, speculated)
    for nidx in range(4):
        s = f"f{nidx}_"
        b.load(s + "n0", s + "ixf", "IX", coeff=4, offset=nidx)
        b.op(s + "n1", Opcode.FMUL, s + "ix", s + "ixf", 120.0)
        b.op(s + "n2", Opcode.FMUL, s + "fx", "svh", 0.25)
        b.op(s + "n3", Opcode.FADD, s + "fc", s + "fx", "sxy")
        b.load(s + "n4", s + "fo", "FORCE", index_reg=Reg(s + "ix"),
               alias_hints=_hints(f_stores, 0.00006))
        b.op(s + "n5", Opcode.FADD, s + "fn", s + "fo", s + "fc")
        b.op(s + "n6", Opcode.FMUL, s + "fs", s + "fn", 0.99)
        b.store(s + "n7", "FORCE", Reg(s + "fs"), index_reg=Reg(s + "ix"))
    b.op("ctr", Opcode.IADD, "c_node", "c_node", 5)
    return b.build()


def _build_all() -> tuple[SelectedLoop, ...]:
    art_cov = 0.216 / 4.0
    return (
        SelectedLoop(_art_match_loop("art_match_u4", units=4), "art",
                     coverage=art_cov, paper_mii=11, paper_ldp=29,
                     paper_tms_ii=15.5, paper_tms_maxlive=15,
                     paper_tms_cdelay=5,
                     note="11-instruction body unrolled four times"),
        SelectedLoop(_art_match_loop("art_train_u4", units=4), "art",
                     coverage=art_cov, paper_mii=11, paper_ldp=29,
                     paper_tms_ii=15.5, paper_tms_maxlive=15,
                     paper_tms_cdelay=5,
                     note="11-instruction body unrolled four times"),
        SelectedLoop(_art_small_loop("art_winner"), "art",
                     coverage=art_cov, paper_mii=11, paper_ldp=29,
                     paper_tms_ii=15.5, paper_tms_maxlive=15,
                     paper_tms_cdelay=5),
        SelectedLoop(_art_small_loop("art_reset"), "art",
                     coverage=art_cov, paper_mii=11, paper_ldp=29,
                     paper_tms_ii=15.5, paper_tms_maxlive=15,
                     paper_tms_cdelay=5),
        SelectedLoop(_equake_smvp_loop(), "equake",
                     coverage=0.585, paper_mii=20, paper_ldp=26,
                     paper_tms_ii=27, paper_tms_maxlive=31,
                     paper_tms_cdelay=6,
                     note="smvp sparse matrix-vector product"),
        SelectedLoop(_lucas_fft_loop(), "lucas",
                     coverage=0.334, paper_mii=62, paper_ldp=89,
                     paper_tms_ii=64, paper_tms_maxlive=15,
                     paper_tms_cdelay=62,
                     note="recurrence-bound: C_delay ~ MII"),
        SelectedLoop(_fma3d_force_loop(), "fma3d",
                     coverage=0.143, paper_mii=18, paper_ldp=34,
                     paper_tms_ii=20, paper_tms_maxlive=30,
                     paper_tms_cdelay=6,
                     note="platq element force computation"),
    )


DOACROSS_LOOPS: tuple[SelectedLoop, ...] = _build_all()


def selected_loops(benchmark: str | None = None) -> list[SelectedLoop]:
    """All Table-3 loops, optionally filtered by benchmark."""
    if benchmark is None:
        return list(DOACROSS_LOOPS)
    return [sl for sl in DOACROSS_LOOPS if sl.benchmark == benchmark]
