"""Memory-dependence profiling.

The paper profiles SPECfp2000 with the *train* inputs to estimate the
probability ``p_d`` of each memory dependence: "for every X writes at the
producer, ``p_d * X`` reads from the consumer will be made to the same
memory location".  We reproduce the flow by running the reference
interpreter with address tracing and counting, for each (store, load/store)
pair at each distance ``d``, the fraction of producer iterations whose
written address is touched by the consumer ``d`` iterations later.

The result feeds :func:`repro.graph.ddg.build_ddg` (``probabilities=``) so
TMS compiles against *estimated* probabilities while the SpMT simulator
draws violations from an independently seeded run — mirroring the paper's
train-input/MinneSPEC split.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..ir.interp import run_sequential
from ..ir.loop import Loop

__all__ = ["profile_memory_dependences"]


def profile_memory_dependences(
    loop: Loop,
    iterations: int = 512,
    *,
    max_distance: int = 4,
    min_probability: float = 1e-4,
    array_init: dict[str, np.ndarray] | None = None,
) -> dict[tuple[str, str, int], float]:
    """Profile ``loop`` and return ``(producer, consumer, distance) -> p_d``.

    Pairs whose measured probability falls below ``min_probability`` are
    dropped (the paper's profiler likewise reports only dependences that
    actually occur).  Only store->load (flow), load->store (anti) and
    store->store (output) pairs within the same array are considered.
    """
    result = run_sequential(loop, iterations, trace=True, array_init=array_init)
    trace = result.address_trace

    # address -> iteration map per instruction, as dense arrays
    addr_of: dict[str, np.ndarray] = {}
    for name, entries in trace.items():
        arr = np.full(iterations, -1, dtype=np.int64)
        for it, addr in entries:
            arr[it] = addr
        addr_of[name] = arr

    arrays_of = {ins.name: ins.mem.array for ins in loop.body if ins.mem is not None}
    stores = [ins.name for ins in loop.stores]
    accesses = [ins.name for ins in loop.body if ins.mem is not None]
    positions = {ins.name: idx for idx, ins in enumerate(loop.body)}

    out: dict[tuple[str, str, int], float] = {}
    for producer in stores:
        pa = addr_of.get(producer)
        if pa is None:
            continue
        for consumer in accesses:
            if arrays_of[consumer] != arrays_of[producer]:
                continue
            ca = addr_of.get(consumer)
            if ca is None:
                continue
            min_d = 0 if positions[producer] < positions[consumer] else 1
            for d in range(min_d, max_distance + 1):
                if d == 0 and producer == consumer:
                    continue
                if d == 0:
                    hits = np.count_nonzero(pa == ca)
                    denom = iterations
                else:
                    hits = np.count_nonzero(pa[:-d] == ca[d:])
                    denom = iterations - d
                if denom <= 0:
                    continue
                p = hits / denom
                if p >= min_probability:
                    out[(producer, consumer, d)] = float(p)
    return out
