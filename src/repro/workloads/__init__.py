"""Workloads: the motivating example, the synthetic SPECfp2000 stand-in
suite, the Table-3 DOACROSS loops, and the memory-dependence profiler.

See DESIGN.md Section 2 for how these substitute for the paper's
GCC-compiled SPECfp2000 binaries.
"""

from .motivating import (
    motivating_loop,
    motivating_ddg,
    motivating_machine,
    motivating_latency,
)
from .memprofile import profile_memory_dependences
from .generator import LoopShape, SyntheticLoopGenerator, generate_population
from .specfp import (
    BenchmarkSpec,
    SPECFP_BENCHMARKS,
    benchmark_by_name,
    generate_benchmark_loops,
)
from .doacross import DOACROSS_LOOPS, SelectedLoop, selected_loops
from .kernels import KERNEL_NAMES, all_kernels, kernel_by_name

__all__ = [
    "BenchmarkSpec",
    "DOACROSS_LOOPS",
    "KERNEL_NAMES",
    "LoopShape",
    "SPECFP_BENCHMARKS",
    "SelectedLoop",
    "SyntheticLoopGenerator",
    "all_kernels",
    "benchmark_by_name",
    "kernel_by_name",
    "generate_benchmark_loops",
    "generate_population",
    "motivating_ddg",
    "motivating_latency",
    "motivating_loop",
    "motivating_machine",
    "profile_memory_dependences",
    "selected_loops",
]
