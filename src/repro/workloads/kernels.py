"""A library of classic innermost-loop kernels.

Recognisable numerical loops, written in the IR, for examples, tests and
user experimentation.  Each comes with the dependence character that makes
it interesting for software pipelining / SpMT:

=================  ==========================================================
kernel             loop-carried structure
=================  ==========================================================
``dot_product``    one reduction accumulator (pure DOALL but for the sum)
``daxpy``          none (DOALL) — the pipelining best case
``fir_filter``     none across iterations; deep intra-iteration chain
``prefix_sum``     exact distance-1 memory recurrence (scan)
``jacobi_1d``      reads neighbours, writes a second array (DOALL)
``seidel_1d``      in-place stencil: exact distance-1 recurrence (DOACROSS)
``histogram``      indirect scatter increments (speculated DOACROSS)
``pointer_chase``  serial register recurrence through an index (worst case)
``livermore_k5``   tri-diagonal elimination: distance-1 recurrence
``complex_mac``    complex multiply-accumulate, two reduction chains
=================  ==========================================================

``all_kernels()`` returns every kernel; ``kernel_by_name`` looks one up.
"""

from __future__ import annotations

from ..errors import WorkloadError
from ..ir.builder import LoopBuilder
from ..ir.instruction import AliasHint
from ..ir.loop import Loop
from ..ir.opcode import Opcode
from ..ir.operand import Reg

__all__ = ["all_kernels", "kernel_by_name", "KERNEL_NAMES"]

_N = 256


def dot_product() -> Loop:
    """``s += x[i] * y[i]`` — single reduction accumulator."""
    b = LoopBuilder("dot_product", arrays={"X": _N, "Y": _N},
                    live_ins={"s": 0.0})
    b.load("n0", "x", "X")
    b.load("n1", "y", "Y")
    b.op("n2", Opcode.FMUL, "m", "x", "y")
    b.op("n3", Opcode.FADD, "s", "s", "m")
    return b.build()


def daxpy() -> Loop:
    """``y[i] += a * x[i]`` — the DOALL best case."""
    b = LoopBuilder("daxpy", arrays={"X": _N, "Y": _N}, live_ins={"a": 2.0})
    b.load("n0", "x", "X")
    b.op("n1", Opcode.FMUL, "ax", "x", "a")
    b.load("n2", "y", "Y")
    b.op("n3", Opcode.FADD, "r", "ax", "y")
    b.store("n4", "Y", Reg("r"))
    return b.build()


def fir_filter(taps: int = 4) -> Loop:
    """``y[i] = sum_k c_k * x[i+k]`` — deep intra-iteration tree, no
    loop-carried dependence."""
    if taps < 2:
        raise WorkloadError("fir_filter needs at least 2 taps")
    b = LoopBuilder("fir_filter", arrays={"X": _N, "Y": _N},
                    live_ins={f"c{k}": 0.5 + 0.1 * k for k in range(taps)})
    terms = []
    for k in range(taps):
        b.load(f"l{k}", f"x{k}", "X", offset=k)
        b.op(f"m{k}", Opcode.FMUL, f"t{k}", f"x{k}", f"c{k}")
        terms.append(f"t{k}")
    acc = terms[0]
    for k, term in enumerate(terms[1:], start=1):
        b.op(f"a{k}", Opcode.FADD, f"s{k}", acc, term)
        acc = f"s{k}"
    b.store("st", "Y", Reg(acc))
    return b.build()


def prefix_sum() -> Loop:
    """``p[i+1] = p[i] + x[i]`` — exact distance-1 memory recurrence."""
    b = LoopBuilder("prefix_sum", arrays={"X": _N, "P": _N})
    b.load("n0", "p", "P")
    b.load("n1", "x", "X")
    b.op("n2", Opcode.FADD, "n", "p", "x")
    b.store("n3", "P", Reg("n"), offset=1)
    return b.build()


def jacobi_1d() -> Loop:
    """``b[i] = (a[i] + a[i+1] + a[i+2]) / 3`` — DOALL stencil."""
    b = LoopBuilder("jacobi_1d", arrays={"A": _N, "B": _N},
                    live_ins={"third": 1.0 / 3.0})
    b.load("n0", "a0", "A", offset=0)
    b.load("n1", "a1", "A", offset=1)
    b.load("n2", "a2", "A", offset=2)
    b.op("n3", Opcode.FADD, "s0", "a0", "a1")
    b.op("n4", Opcode.FADD, "s1", "s0", "a2")
    b.op("n5", Opcode.FMUL, "r", "s1", "third")
    b.store("n6", "B", Reg("r"))
    return b.build()


def seidel_1d() -> Loop:
    """In-place stencil ``a[i+1] = (a[i] + a[i+1] + a[i+2]) / 3`` — the
    write feeds the next iteration's reads (exact DOACROSS)."""
    b = LoopBuilder("seidel_1d", arrays={"A": _N},
                    live_ins={"third": 1.0 / 3.0})
    b.load("n0", "a0", "A", offset=0)
    b.load("n1", "a1", "A", offset=1)
    b.load("n2", "a2", "A", offset=2)
    b.op("n3", Opcode.FADD, "s0", "a0", "a1")
    b.op("n4", Opcode.FADD, "s1", "s0", "a2")
    b.op("n5", Opcode.FMUL, "r", "s1", "third")
    b.store("n6", "A", Reg("r"), offset=1)
    return b.build()


def histogram() -> Loop:
    """``h[bin(x[i])] += 1`` — indirect scatter; consecutive iterations
    rarely hit the same bin (the speculated DOACROSS pattern)."""
    b = LoopBuilder("histogram", arrays={"X": _N, "H": 64},
                    live_ins={"one": 1.0})
    hint = (AliasHint("n4", distance=1, probability=1.0 / 64),)
    b.load("n0", "x", "X")
    b.op("n1", Opcode.FMUL, "bin", "x", 42.0)
    b.load("n2", "h", "H", index_reg=Reg("bin"), alias_hints=hint)
    b.op("n3", Opcode.FADD, "hn", "h", "one")
    b.store("n4", "H", Reg("hn"), index_reg=Reg("bin"))
    return b.build()


def pointer_chase() -> Loop:
    """``p = next[p]; s += data[p]`` — a serial load-to-address recurrence:
    nothing to pipeline, the SpMT worst case."""
    b = LoopBuilder("pointer_chase", arrays={"NEXT": _N, "DATA": _N},
                    live_ins={"p": 1.0, "s": 0.0})
    b.load("n0", "pn", "NEXT", index_reg=Reg("p"))
    b.op("n1", Opcode.FMUL, "p", "pn", 97.0)
    b.load("n2", "d", "DATA", index_reg=Reg("p"))
    b.op("n3", Opcode.FADD, "s", "s", "d")
    return b.build()


def livermore_k5() -> Loop:
    """Livermore kernel 5 (tri-diagonal elimination):
    ``x[i] = z[i] * (y[i] - x[i-1])`` — a multiply on the critical
    recurrence."""
    b = LoopBuilder("livermore_k5", arrays={"X": _N, "Y": _N, "Z": _N})
    b.load("n0", "xp", "X", offset=0)
    b.load("n1", "y", "Y", offset=1)
    b.load("n2", "z", "Z", offset=1)
    b.op("n3", Opcode.FSUB, "d", "y", "xp")
    b.op("n4", Opcode.FMUL, "r", "z", "d")
    b.store("n5", "X", Reg("r"), offset=1)
    return b.build()


def complex_mac() -> Loop:
    """Complex multiply-accumulate: two interleaved reduction chains."""
    b = LoopBuilder("complex_mac",
                    arrays={"AR": _N, "AI": _N, "BR": _N, "BI": _N},
                    live_ins={"sr": 0.0, "si": 0.0})
    b.load("n0", "ar", "AR")
    b.load("n1", "ai", "AI")
    b.load("n2", "br", "BR")
    b.load("n3", "bi", "BI")
    b.op("n4", Opcode.FMUL, "rr", "ar", "br")
    b.op("n5", Opcode.FMUL, "ii", "ai", "bi")
    b.op("n6", Opcode.FMUL, "ri", "ar", "bi")
    b.op("n7", Opcode.FMUL, "ir", "ai", "br")
    b.op("n8", Opcode.FSUB, "re", "rr", "ii")
    b.op("n9", Opcode.FADD, "im", "ri", "ir")
    b.op("n10", Opcode.FADD, "sr", "sr", "re")
    b.op("n11", Opcode.FADD, "si", "si", "im")
    return b.build()


_FACTORIES = {
    "dot_product": dot_product,
    "daxpy": daxpy,
    "fir_filter": fir_filter,
    "prefix_sum": prefix_sum,
    "jacobi_1d": jacobi_1d,
    "seidel_1d": seidel_1d,
    "histogram": histogram,
    "pointer_chase": pointer_chase,
    "livermore_k5": livermore_k5,
    "complex_mac": complex_mac,
}

KERNEL_NAMES = tuple(sorted(_FACTORIES))


def all_kernels() -> list[Loop]:
    """Every kernel, freshly built."""
    return [factory() for _name, factory in sorted(_FACTORIES.items())]


def kernel_by_name(name: str) -> Loop:
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise WorkloadError(
            f"unknown kernel {name!r}; choose from {KERNEL_NAMES}") from None
