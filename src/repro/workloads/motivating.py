"""The paper's motivating example (Figures 1 and 2).

A nine-instruction loop whose DDG reproduces every anchor fact recoverable
from the paper's text:

* ``ResII = 4`` (the non-pipelined multiplier), ``RecII = 8`` from the
  recurrence circuit ``(n0, n1, n2, n4, n5)`` closed by the memory
  dependence ``n5 -> n0``; hence ``MII = 8``;
* memory dependences ``n5 -> n0``, ``n5 -> n2``, ``n5 -> n3`` with small
  profile probabilities; all other dependences are register dependences;
* kernel inter-iteration flow dependences under SMS:
  ``n5->n0, n5->n2, n5->n3, n6->n0, n6->n6, n7->n3, n7->n7, n8->n8``,
  with ``n8 -> n5`` turned intra-iteration (``d_ker = 0``);
* SMS places ``n6`` at cycle 7 of its ``[7, 0]`` window, giving
  ``sync(n6, n0) = 7 - 0 + 1 + 3 = 11`` — consecutive threads serialise;
* TMS places ``n6`` within its ``C_delay`` threshold, collapsing the sync
  delay to ~4-5 cycles.

The loop's concrete semantics (three indirect-index loads chained into a
multiply whose result is stored back through a strided pointer) make the
``n5 -> n0/n2/n3`` collisions genuinely rare and measurable by the profiler.
"""

from __future__ import annotations

from ..graph.ddg import DDG, build_ddg
from ..ir.builder import LoopBuilder
from ..ir.instruction import AliasHint
from ..ir.loop import Loop
from ..ir.opcode import FUClass, Opcode
from ..machine.latency import LatencyModel
from ..machine.resources import FUSpec, ResourceModel
from ..ir.operand import Reg

__all__ = [
    "motivating_loop",
    "motivating_ddg",
    "motivating_machine",
    "motivating_latency",
    "MEM_DEP_PROBABILITY",
]

#: profile probability of the speculated dependences n5 -> {n0, n2, n3}.
MEM_DEP_PROBABILITY = 0.015

#: array size; with stride-3/2/5 counters modulo 97 the store rarely hits a
#: location one of the loads reads in the next iteration.
_ARRAY_SIZE = 97


def motivating_loop() -> Loop:
    """The Figure-1 loop as concrete, executable IR."""
    hint = (AliasHint("n5", distance=1, probability=MEM_DEP_PROBABILITY),)
    b = LoopBuilder(
        "motivating",
        arrays={"A": _ARRAY_SIZE},
        live_ins={"v6": 1.0, "v7": 2.0, "v8": 3.0, "c": 0.5},
    )
    # n0 reads A at n6's counter: register dep n6 -> n0 (d=1) and memory
    # dep n5 -> n0 (d=1, speculated).
    b.load("n0", "t0", "A", index_reg=Reg("v6"), alias_hints=hint)
    b.op("n1", Opcode.FADD, "t1", "t0", "c")
    # n2's address comes through t1 (scaled into an index), keeping it on
    # the recurrence circuit and aliasing A: n5 -> n2.
    b.load("n2", "t2", "A", index_reg=Reg("t1"), alias_hints=hint)
    # n3 reads A at n7's counter: n7 -> n3 (d=1) and n5 -> n3.
    b.load("n3", "t3", "A", index_reg=Reg("v7"), alias_hints=hint)
    b.op("n4", Opcode.FMUL, "t4", "t2", "t3")
    # n5 stores through n8's counter: n8 -> n5 (d=1) plus the speculated
    # flow dependences onto next iteration's loads.
    b.store("n5", "A", Reg("t4"), index_reg=Reg("v8"))
    b.op("n6", Opcode.IADD, "v6", "v6", 3)
    b.op("n7", Opcode.IADD, "v7", "v7", 2)
    b.op("n8", Opcode.IADD, "v8", "v8", 5)
    return b.build()


def motivating_latency() -> LatencyModel:
    """Figure 1's latencies: everything 1 cycle except the 4-cycle
    multiply (and 1-cycle loads — the example predates the cache model)."""
    return LatencyModel({
        Opcode.LOAD: 1,
        Opcode.STORE: 1,
        Opcode.IADD: 1,
        Opcode.FADD: 1,
        Opcode.FMUL: 4,
    })


def motivating_machine() -> ResourceModel:
    """Figure 1's core: 4-wide, 2 ALUs, 2 memory ports, one FP adder and a
    non-pipelined multiplier (occupancy 4 -> ResII = 4)."""
    return ResourceModel({
        FUClass.ALU: FUSpec(count=2),
        FUClass.FPADD: FUSpec(count=1),
        FUClass.FPMUL: FUSpec(count=1, occupancy=4),
        FUClass.MEM: FUSpec(count=2),
    }, issue_width=4)


def motivating_ddg() -> DDG:
    """DDG of the motivating loop under the example machine's latencies."""
    return build_ddg(motivating_loop(), motivating_latency())
