"""Calibrated synthetic SPECfp2000 suite (the Table-2 population).

The paper modulo-schedules 778 innermost loops across 13 SPECfp2000
benchmarks (galgel excluded).  We cannot compile SPEC with GCC 4.1.1, so
each benchmark is replaced by a seeded population of synthetic loops whose
*statistics* match Table 2's calibration columns:

* the loop count (column 2) and average instruction count (column 3) are
  taken directly from the table;
* the recurrence/opcode knobs are set so the average MII lands near
  column 4 — for most benchmarks Table 2's MII is issue-width-bound
  (``MII ~= #Inst / 4``); art is recurrence-bound; lucas mixes huge bodies
  with probability-1 memory recurrences (its Section-5.2 loop);
* wupwise's population is dominated by a single-SCC loop with most of the
  benchmark's coverage, reproducing the paper's explanation of why TMS
  gains nothing there;
* per-benchmark loop *coverage* (fraction of program time spent in the
  modulo-scheduled loops) drives the Amdahl composition of program
  speedups in Figure 4.  Coverages are calibration constants chosen to
  reflect the paper's "good loop coverage ratios" for the eight benchmarks
  with visible program speedups.

Columns 5-10 of Table 2 (per-algorithm II / MaxLive / C_delay) are *not*
inputs: they are what the experiments must reproduce; the values from the
paper are recorded here as ``paper_*`` fields for EXPERIMENTS.md's
paper-vs-measured report.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import WorkloadError
from ..ir.loop import Loop
from .generator import LoopShape, SyntheticLoopGenerator

__all__ = [
    "PaperRow",
    "BenchmarkSpec",
    "SPECFP_BENCHMARKS",
    "benchmark_by_name",
    "generate_benchmark_loops",
    "loop_weights",
]


@dataclass(frozen=True)
class PaperRow:
    """Table 2's reported values for one benchmark (for comparison only)."""

    mii: float
    sms_ii: float
    sms_maxlive: float
    sms_cdelay: float
    tms_ii: float
    tms_maxlive: float
    tms_cdelay: float


@dataclass(frozen=True)
class BenchmarkSpec:
    """Generator calibration for one benchmark."""

    name: str
    n_loops: int
    avg_inst: float
    inst_spread: float
    coverage: float
    #: probability that a loop has 0/1/2 register recurrences
    reg_rec_pmf: tuple[float, ...] = (0.3, 0.5, 0.2)
    rec_len: tuple[int, int] = (2, 3)
    mem_rec_pmf: tuple[float, ...] = (1.0,)
    mem_rec_ops: int = 1
    mem_rec_use_mul: bool = False
    mem_rec_distance: int = 1
    spec_deps: tuple[int, int] = (0, 1)
    spec_prob: tuple[float, float] = (0.005, 0.04)
    counters: tuple[int, int] = (1, 2)
    mul_fraction: float = 0.3
    div_fraction: float = 0.0
    store_fraction: float = 0.5
    #: Zipf-ish concentration of coverage across the benchmark's loops
    #: (higher -> one loop dominates, as in wupwise).
    weight_skew: float = 1.0
    #: index of a special dominating single-SCC loop, or None
    dominant_scc_loop: int | None = None
    paper: PaperRow | None = None

    @property
    def seed(self) -> int:
        return zlib.crc32(f"specfp-{self.name}".encode())


def _row(mii, sii, sml, scd, tii, tml, tcd) -> PaperRow:
    return PaperRow(mii, sii, sml, scd, tii, tml, tcd)


SPECFP_BENCHMARKS: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec(
        name="wupwise", n_loops=16, avg_inst=16.2, inst_spread=4.0,
        coverage=0.42, reg_rec_pmf=(0.4, 0.5, 0.1), rec_len=(2, 3),
        spec_deps=(0, 1), counters=(1, 2), mul_fraction=0.35,
        weight_skew=3.0, dominant_scc_loop=0,
        paper=_row(4.4, 5.4, 14.0, 5.4, 9.5, 12.5, 3.1)),
    BenchmarkSpec(
        name="swim", n_loops=11, avg_inst=25.7, inst_spread=5.0,
        coverage=0.55, reg_rec_pmf=(0.7, 0.3), rec_len=(2, 2),
        spec_deps=(0, 1), counters=(0, 1), mul_fraction=0.25,
        paper=_row(6.0, 8.6, 14.6, 6.5, 10.1, 15.0, 2.0)),
    BenchmarkSpec(
        name="mgrid", n_loops=10, avg_inst=34.3, inst_spread=6.0,
        coverage=0.55, reg_rec_pmf=(0.4, 0.5, 0.1), rec_len=(2, 4),
        spec_deps=(0, 1), counters=(1, 1), mul_fraction=0.3,
        paper=_row(8.3, 14.2, 15.1, 14.2, 15.2, 26.3, 5.0)),
    BenchmarkSpec(
        name="applu", n_loops=41, avg_inst=46.8, inst_spread=10.0,
        coverage=0.45, reg_rec_pmf=(0.3, 0.5, 0.2), rec_len=(2, 4),
        spec_deps=(0, 2), counters=(1, 2), mul_fraction=0.35,
        div_fraction=0.02,
        paper=_row(11.9, 19.4, 18.9, 19.2, 23.7, 24.2, 5.8)),
    BenchmarkSpec(
        name="mesa", n_loops=51, avg_inst=24.3, inst_spread=6.0,
        coverage=0.22, reg_rec_pmf=(0.5, 0.4, 0.1), rec_len=(2, 3),
        spec_deps=(0, 1), counters=(1, 2), mul_fraction=0.3,
        paper=_row(5.7, 6.8, 13.2, 6.3, 9.2, 15.9, 2.6)),
    BenchmarkSpec(
        name="art", n_loops=10, avg_inst=16.1, inst_spread=3.0,
        coverage=0.50, reg_rec_pmf=(0.3, 0.6, 0.1), rec_len=(2, 3),
        mem_rec_pmf=(0.2, 0.6, 0.2), mem_rec_ops=1, mem_rec_use_mul=True,
        spec_deps=(1, 2), spec_prob=(0.005, 0.03), counters=(1, 2),
        mul_fraction=0.4,
        paper=_row(7.6, 8.1, 7.8, 8.1, 10.6, 8.4, 4.0)),
    BenchmarkSpec(
        name="equake", n_loops=5, avg_inst=43.6, inst_spread=8.0,
        coverage=0.62, reg_rec_pmf=(0.2, 0.6, 0.2), rec_len=(2, 4),
        spec_deps=(1, 3), spec_prob=(0.005, 0.03), counters=(2, 3),
        mul_fraction=0.35,
        paper=_row(11.4, 12.2, 16.2, 11.8, 16.6, 17.8, 5.0)),
    BenchmarkSpec(
        name="facerec", n_loops=26, avg_inst=31.7, inst_spread=7.0,
        coverage=0.38, reg_rec_pmf=(0.4, 0.5, 0.1), rec_len=(2, 3),
        spec_deps=(0, 1), counters=(1, 2), mul_fraction=0.3,
        paper=_row(8.0, 10.5, 17.4, 9.5, 12.7, 16.5, 2.9)),
    BenchmarkSpec(
        name="ammp", n_loops=11, avg_inst=35.6, inst_spread=7.0,
        coverage=0.25, reg_rec_pmf=(0.3, 0.5, 0.2), rec_len=(2, 4),
        spec_deps=(0, 2), counters=(1, 2), mul_fraction=0.4,
        paper=_row(9.6, 13.4, 13.7, 13.3, 16.3, 14.0, 4.8)),
    BenchmarkSpec(
        name="lucas", n_loops=24, avg_inst=169.6, inst_spread=35.0,
        coverage=0.50, reg_rec_pmf=(0.3, 0.5, 0.2), rec_len=(3, 5),
        mem_rec_pmf=(0.5, 0.3, 0.2), spec_deps=(0, 2), counters=(2, 3),
        mul_fraction=0.35,
        paper=_row(42.2, 59.2, 38.7, 59.1, 65.8, 42.2, 7.9)),
    BenchmarkSpec(
        name="fma3d", n_loops=170, avg_inst=29.0, inst_spread=8.0,
        coverage=0.30, reg_rec_pmf=(0.4, 0.5, 0.1), rec_len=(2, 3),
        spec_deps=(0, 2), spec_prob=(0.005, 0.03), counters=(1, 2),
        mul_fraction=0.3,
        paper=_row(7.3, 8.8, 16.8, 8.8, 11.8, 19.4, 3.7)),
    BenchmarkSpec(
        name="sixtrack", n_loops=340, avg_inst=41.2, inst_spread=10.0,
        coverage=0.35, reg_rec_pmf=(0.35, 0.5, 0.15), rec_len=(2, 4),
        spec_deps=(0, 2), counters=(1, 2), mul_fraction=0.35,
        div_fraction=0.01,
        paper=_row(10.7, 14.1, 21.9, 13.9, 23.0, 26.8, 6.7)),
    BenchmarkSpec(
        name="apsi", n_loops=63, avg_inst=29.0, inst_spread=7.0,
        coverage=0.30, reg_rec_pmf=(0.4, 0.5, 0.1), rec_len=(2, 3),
        spec_deps=(0, 1), counters=(1, 2), mul_fraction=0.3,
        paper=_row(7.7, 10.1, 17.6, 10.1, 13.1, 18.2, 3.6)),
)

_BY_NAME = {spec.name: spec for spec in SPECFP_BENCHMARKS}


def benchmark_by_name(name: str) -> BenchmarkSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise WorkloadError(
            f"unknown benchmark {name!r}; choose from "
            f"{sorted(_BY_NAME)}") from None


def generate_benchmark_loops(spec: BenchmarkSpec,
                             max_loops: int | None = None,
                             seed: int | None = None) -> list[Loop]:
    """Generate the loop population of one benchmark (deterministic).

    ``max_loops`` caps the population for quick runs; the cap takes the
    first loops, which carry the largest coverage weights.  ``seed``
    perturbs the benchmark's calibrated base seed (``None`` / 0 keeps
    the canonical Table-2 population), producing a fresh but fully
    reproducible population for the same calibration — the hook the
    experiments CLI's ``--seed`` option threads through.
    """
    base = spec.seed + (seed or 0)
    rng = np.random.default_rng(base)
    n = spec.n_loops if max_loops is None else min(spec.n_loops, max_loops)
    loops: list[Loop] = []
    for idx in range(n):
        shape = _draw_shape(spec, rng, idx)
        gen = SyntheticLoopGenerator(shape, seed=base + 7919 * idx + 1)
        loops.append(gen.generate(f"{spec.name}_loop{idx}"))
    return loops


def _draw_shape(spec: BenchmarkSpec, rng: np.random.Generator,
                idx: int) -> LoopShape:
    n_instr = max(6, int(round(rng.normal(spec.avg_inst, spec.inst_spread))))
    if spec.dominant_scc_loop is not None and idx == spec.dominant_scc_loop:
        # wupwise's performance-dominating loop: one long single SCC whose
        # RecII approaches its LDP, so ILP and TLP trade off one for one.
        return LoopShape(
            n_instr=max(n_instr, 14),
            n_counters=1,
            n_reg_recurrences=1,
            reg_recurrence_len=4,
            serial_recurrence=True,
            n_mem_recurrences=0,
            n_spec_deps=0,
            mul_fraction=0.5,
            store_fraction=0.4,
        )
    n_reg_rec = int(rng.choice(len(spec.reg_rec_pmf), p=spec.reg_rec_pmf))
    rec_len = int(rng.integers(spec.rec_len[0], spec.rec_len[1] + 1))
    n_mem_rec = int(rng.choice(len(spec.mem_rec_pmf), p=spec.mem_rec_pmf))
    n_spec = int(rng.integers(spec.spec_deps[0], spec.spec_deps[1] + 1))
    n_counters = int(rng.integers(spec.counters[0], spec.counters[1] + 1))
    if n_spec > 0:
        n_counters = max(n_counters, 1)
    return LoopShape(
        n_instr=n_instr,
        n_counters=n_counters,
        n_reg_recurrences=n_reg_rec,
        reg_recurrence_len=rec_len,
        n_mem_recurrences=n_mem_rec,
        mem_rec_ops=spec.mem_rec_ops,
        mem_rec_use_mul=spec.mem_rec_use_mul,
        mem_rec_distance=spec.mem_rec_distance,
        n_spec_deps=n_spec,
        spec_probability=float(np.round(
            rng.uniform(spec.spec_prob[0], spec.spec_prob[1]), 4)),
        mul_fraction=spec.mul_fraction,
        div_fraction=spec.div_fraction,
        store_fraction=spec.store_fraction,
    )


def loop_weights(spec: BenchmarkSpec, n: int) -> np.ndarray:
    """Relative execution-time weights of the benchmark's loops (sum to 1):
    a Zipf-like profile with the spec's skew, so early loops dominate."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-spec.weight_skew)
    return w / w.sum()
