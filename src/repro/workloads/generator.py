"""Synthetic innermost-loop generator.

Produces concrete, executable :class:`~repro.ir.loop.Loop` bodies whose DDGs
have controllable population statistics — instruction count, opcode mix,
recurrence structure (number and latency of non-trivial SCCs), counter-fed
indirect accesses (the ``n6 -> n0`` pattern that creates loop-carried
register dependences), and profile-probability speculated memory
dependences.  These are the knobs the paper's Table 2 statistics pin down
per benchmark (see :mod:`repro.workloads.specfp` for the calibration).

Construction recipe (all seeded, fully deterministic):

* **counters** — ``idx = iadd idx, stride`` defined at the *end* of the
  body and consumed at the beginning, creating distance-1 register
  dependences that become SEND/RECV channels on the SpMT machine;
* **register recurrences** — accumulator chains ``acc = f(..., acc)`` of a
  chosen latency (the chain's RecMII);
* **memory recurrences** — ``store M[i+1] <- f(load M[i])``: exact
  distance-1 memory flow dependences with probability 1 (lucas's dominant
  SCC is this shape);
* **work units** — independent load/compute/store strands providing ILP;
* **speculated dependences** — indirect loads with alias hints naming a
  store at distance 1 with a small profile probability, each pair on its
  own array so nothing else aliases it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import WorkloadError
from ..ir.builder import LoopBuilder
from ..ir.instruction import AliasHint
from ..ir.loop import Loop
from ..ir.opcode import Opcode
from ..ir.operand import Reg

__all__ = ["LoopShape", "SyntheticLoopGenerator", "generate_population"]

#: arithmetic opcodes (latency under the default model in parentheses)
_ARITH_LIGHT = (Opcode.FADD, Opcode.FSUB)          # 2 cycles
_ARITH_HEAVY = (Opcode.FMUL,)                      # 4 cycles
_ARITH_DIV = (Opcode.FDIV,)                        # 12 cycles

_ARRAY_SIZE = 256


@dataclass(frozen=True)
class LoopShape:
    """Target shape of one generated loop.

    Attributes
    ----------
    n_instr:
        Total instruction-count target (hit within +-1; recurrence chains
        are never truncated).
    n_counters:
        Stride counters (each is 1 instruction + feeds addresses).
    n_reg_recurrences / reg_recurrence_len:
        Number and total op-length of accumulator strands.  By default only
        the final accumulator add sits on the loop-carried cycle (the
        feeder ops are reassociated off it, as compilers do), so the cycle
        costs 2 cycles and the strand's sync-delay floor is
        ``2 + C_reg_com``.
    serial_recurrence:
        Put the *whole* chain on the carried cycle instead (a truly serial
        recurrence like wupwise's dominant loop): RecII grows with the
        chain and no scheduler can buy TLP without paying the chain's
        latency in sync delay.
    n_mem_recurrences:
        ``A[i+d] = f(A[i])`` strands with probability-1 memory flow
        dependences.
    mem_rec_ops / mem_rec_use_mul / mem_rec_distance:
        Arithmetic depth, heavy-op choice and dependence distance of the
        memory recurrences: RecII contribution is roughly
        ``(3 + ops_latency + 1) / distance`` (art's suite loops are
        recurrence-bound this way).
    n_spec_deps:
        Indirect-load/store pairs left to speculation.
    spec_probability:
        Profile probability assigned to each speculated dependence.
    mul_fraction / div_fraction:
        Mix of heavy FP ops inside work units.
    store_fraction:
        Fraction of work units that write their result to memory.
    """

    n_instr: int
    n_counters: int = 2
    n_reg_recurrences: int = 1
    reg_recurrence_len: int = 2
    serial_recurrence: bool = False
    n_mem_recurrences: int = 0
    mem_rec_ops: int = 1
    mem_rec_use_mul: bool = False
    mem_rec_distance: int = 1
    n_spec_deps: int = 1
    spec_probability: float = 0.02
    mul_fraction: float = 0.3
    div_fraction: float = 0.0
    store_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.n_instr < 4:
            raise WorkloadError(f"n_instr must be >= 4, got {self.n_instr}")
        if not 0.0 <= self.spec_probability <= 1.0:
            raise WorkloadError("spec_probability must be in [0, 1]")
        for name in ("mul_fraction", "div_fraction", "store_fraction"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise WorkloadError(f"{name} must be in [0, 1]")


class SyntheticLoopGenerator:
    """Seeded generator of loops matching a :class:`LoopShape`."""

    def __init__(self, shape: LoopShape, seed: int) -> None:
        self.shape = shape
        self.rng = np.random.default_rng(seed)

    # -- helpers --------------------------------------------------------------

    def _pick_arith(self) -> Opcode:
        u = self.rng.random()
        if u < self.shape.div_fraction:
            return _ARITH_DIV[0]
        if u < self.shape.div_fraction + self.shape.mul_fraction:
            return _ARITH_HEAVY[0]
        return _ARITH_LIGHT[int(self.rng.integers(len(_ARITH_LIGHT)))]

    # -- main entry --------------------------------------------------------------

    def generate(self, name: str) -> Loop:
        shape = self.shape
        b = LoopBuilder(name)
        n_id = 0

        def label() -> str:
            nonlocal n_id
            lbl = f"n{n_id}"
            n_id += 1
            return lbl

        arrays: list[str] = []

        def new_array(prefix: str) -> str:
            arr = f"{prefix}{len(arrays)}"
            arrays.append(arr)
            b.arrays[arr] = _ARRAY_SIZE
            return arr

        emitted = 0
        budget = shape.n_instr

        # ---- counters (defined at the end; reserve their budget now) ----
        counters = [f"idx{c}" for c in range(shape.n_counters)]
        for c, reg in enumerate(counters):
            b.live_ins[reg] = float(c + 1)
        budget -= shape.n_counters

        values: list[str] = []  # registers usable as arithmetic inputs

        # ---- register recurrences ----
        for r in range(shape.n_reg_recurrences):
            acc = f"acc{r}"
            b.live_ins[acc] = 1.0 + r
            length = max(1, shape.reg_recurrence_len)
            if emitted + length > budget:
                break
            if shape.serial_recurrence:
                # truly serial: every op reads the previous link, the
                # first reads last iteration's accumulator.
                prev = acc
                for k in range(length - 1):
                    t = f"rc{r}_{k}"
                    b.op(label(), self._pick_arith(), t, prev, 0.5 + 0.25 * k)
                    prev = t
                    emitted += 1
                b.op(label(), self._pick_arith(), acc, prev, 1.0 + 0.125 * r)
                emitted += 1
            else:
                # reassociated: feeders form an off-cycle chain; only the
                # final add carries the accumulator across iterations.
                prev: object = 0.5
                for k in range(length - 1):
                    t = f"rc{r}_{k}"
                    b.op(label(), self._pick_arith(), t, prev, 0.5 + 0.25 * k)
                    prev = Reg(t)
                    emitted += 1
                b.op(label(), Opcode.FADD, acc, acc, prev)
                emitted += 1
            values.append(acc)

        # ---- memory recurrences ----
        for m in range(shape.n_mem_recurrences):
            cost = 2 + max(1, shape.mem_rec_ops)
            if emitted + cost > budget:
                break
            arr = new_array("M")
            lv = f"mr{m}_l"
            b.load(label(), lv, arr, coeff=1, offset=0)
            prev = lv
            for k in range(max(1, shape.mem_rec_ops)):
                tv = f"mr{m}_t{k}"
                op = (Opcode.FMUL if shape.mem_rec_use_mul and k == 0
                      else Opcode.FADD)
                b.op(label(), op, tv, prev, 0.75 + 0.125 * k)
                prev = tv
            b.store(label(), arr, Reg(prev),
                    coeff=1, offset=max(1, shape.mem_rec_distance))
            emitted += cost
            values.append(prev)

        # ---- speculated-dependence pairs ----
        for s in range(shape.n_spec_deps):
            if emitted + 3 > budget:
                break
            arr = new_array("S")
            store_lbl = f"sp{s}_st"
            load_lbl = f"sp{s}_ld"
            lv = f"sp{s}_v"
            counter = counters[s % len(counters)]
            # indirect load (address from a counter defined later ->
            # distance-1 register dep) with a declared probabilistic flow
            # dependence on the strand's own store.
            b.load(load_lbl, lv, arr, index_reg=Reg(counter),
                   alias_hints=(AliasHint(store_lbl, distance=1,
                                          probability=shape.spec_probability),))
            tv = f"sp{s}_t"
            b.op(label(), self._pick_arith(), tv, lv, 1.25)
            b.store(store_lbl, arr, Reg(tv), coeff=1, offset=0)
            emitted += 3
            values.append(tv)

        # ---- independent work units ----
        # stores are deferred to the end of the body (loads cluster early,
        # stores late, as compiled numerical code does) — the resulting
        # lifetime overlap is what gives real SPEC loops their MaxLive.
        pending_stores: list[tuple[str, str]] = []
        unit = 0
        while emitted < budget:
            room = budget - emitted
            if room >= 3 and self.rng.random() < shape.store_fraction:
                arr_in = new_array("A")
                arr_out = new_array("B")
                lv, tv = f"w{unit}_l", f"w{unit}_t"
                off = int(self.rng.integers(0, 4))
                b.load(label(), lv, arr_in, coeff=1, offset=off)
                rhs = self._work_operand(values, counters)
                b.op(label(), self._pick_arith(), tv, lv, rhs)
                pending_stores.append((arr_out, tv))
                emitted += 3
                values.append(tv)
            elif room >= 2:
                arr_in = new_array("A")
                lv, tv = f"w{unit}_l", f"w{unit}_t"
                b.load(label(), lv, arr_in, coeff=1,
                       offset=int(self.rng.integers(0, 4)))
                b.op(label(), self._pick_arith(), tv, lv,
                     self._work_operand(values, counters))
                emitted += 2
                values.append(tv)
            else:
                tv = f"w{unit}_t"
                b.op(label(), self._pick_arith(), tv,
                     self._work_operand(values, counters), 0.5)
                emitted += 1
                values.append(tv)
            unit += 1

        # ---- deferred work-unit stores ----
        for arr_out, tv in pending_stores:
            b.store(label(), arr_out, Reg(tv), coeff=1, offset=0)

        # ---- counters last (uses above read the previous iteration) ----
        for c, reg in enumerate(counters):
            b.op(f"ctr{c}", Opcode.IADD, reg, reg, float(2 * c + 3))
            emitted += 1

        return b.build()

    def _work_operand(self, values: list[str], counters: list[str]):
        """A second operand for a work-unit op: an earlier value, a
        counter (creating a loop-carried register dep) or a constant."""
        u = self.rng.random()
        if values and u < 0.5:
            return Reg(values[int(self.rng.integers(len(values)))])
        if counters and u < 0.7:
            return Reg(counters[int(self.rng.integers(len(counters)))])
        return float(np.round(self.rng.uniform(0.25, 2.0), 3))


def generate_population(shape: LoopShape, n: int, seed: int,
                        prefix: str = "syn") -> list[Loop]:
    """``n`` loops of one shape, each from its own derived seed.

    The per-loop seed is ``seed + 7919 * index`` (the same derivation
    :func:`repro.workloads.specfp.generate_benchmark_loops` uses), so a
    population is fully determined by ``(shape, n, seed)`` — the
    end-to-end reproducibility contract behind the experiments CLI's
    ``--seed`` option and the DSE synthetic-workload sweeps.
    """
    if n < 1:
        raise WorkloadError(f"population size must be >= 1, got {n}")
    return [SyntheticLoopGenerator(shape, seed=seed + 7919 * i)
            .generate(f"{prefix}{i}") for i in range(n)]
