"""Dependence edges of the DDG."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import DDGError

__all__ = ["DepKind", "DepType", "Dependence"]


class DepKind(enum.Enum):
    """What carries the value: a register or a memory location.

    Register dependences become *synchronised* dependences on the SpMT
    machine (SEND/RECV over the operand network); memory dependences become
    *speculated* dependences (tracked by the MDT, preserved by rollback).
    """

    REGISTER = "register"
    MEMORY = "memory"


class DepType(enum.Enum):
    FLOW = "flow"      # true dependence (read-after-write)
    ANTI = "anti"      # write-after-read
    OUTPUT = "output"  # write-after-write


@dataclass(frozen=True)
class Dependence:
    """A dependence edge ``src -> dst``.

    Attributes
    ----------
    src, dst:
        Instruction names.
    kind / dtype:
        Register vs memory, flow vs anti vs output.
    distance:
        Iteration distance ``d(src, dst)`` in the *source loop* (Definition 1
        transforms it into the kernel distance ``d_ker`` once stages are
        known).
    delay:
        Scheduling delay: any valid modulo schedule must satisfy
        ``slot(dst) >= slot(src) + delay - II * distance``.
        For flow dependences this is the producer's latency; for anti/output
        dependences it is 1 (must not issue earlier than the conflicting
        access).
    probability:
        For memory dependences, the per-iteration probability ``p_d`` that
        the dependence actually manifests (for every X writes at the
        producer, ``p_d * X`` reads at the consumer hit the same location).
        Register dependences always have probability 1.
    """

    src: str
    dst: str
    kind: DepKind
    dtype: DepType
    distance: int
    delay: int
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise DDGError(f"{self.src}->{self.dst}: negative distance {self.distance}")
        if self.delay < 0:
            raise DDGError(f"{self.src}->{self.dst}: negative delay {self.delay}")
        if not 0.0 <= self.probability <= 1.0:
            raise DDGError(
                f"{self.src}->{self.dst}: probability {self.probability} not in [0,1]")
        if self.kind is DepKind.REGISTER and self.probability != 1.0:
            raise DDGError(
                f"{self.src}->{self.dst}: register dependences are certain "
                f"(probability must be 1.0)")
        if self.distance == 0 and self.src == self.dst:
            raise DDGError(f"{self.src}: self-dependence must have distance >= 1")

    @property
    def is_loop_carried(self) -> bool:
        return self.distance > 0

    @property
    def is_register_flow(self) -> bool:
        return self.kind is DepKind.REGISTER and self.dtype is DepType.FLOW

    @property
    def is_memory_flow(self) -> bool:
        return self.kind is DepKind.MEMORY and self.dtype is DepType.FLOW

    def __str__(self) -> str:
        tag = f"{self.kind.value[:3]}/{self.dtype.value}"
        prob = "" if self.probability == 1.0 else f", p={self.probability:.3g}"
        return (f"{self.src} -> {self.dst} [{tag}, d={self.distance}, "
                f"delay={self.delay}{prob}]")
