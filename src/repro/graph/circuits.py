"""Elementary-circuit enumeration and critical-recurrence diagnostics.

`repro.graph.mii.rec_mii` computes the recurrence bound without ever
materialising a cycle (positive-cycle feasibility + binary search), which
is what the schedulers use.  This module answers the follow-up question a
compiler engineer actually asks: *which* recurrence binds the II, and by
how much — the paper's per-loop analyses (wupwise's single non-trivial
SCC, lucas's probability-1 carry chain) are exactly such diagnoses.

``elementary_circuits`` is Johnson's algorithm (1975), bounded by a
circuit budget because dense DDGs can have exponentially many cycles;
``critical_circuits`` ranks circuits by their II requirement
``ceil(sum(delay) / sum(distance))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import DDGError
from .ddg import DDG
from .dependence import Dependence
from .scc import strongly_connected_components

__all__ = ["Circuit", "elementary_circuits", "critical_circuits"]


@dataclass(frozen=True)
class Circuit:
    """One elementary dependence circuit."""

    nodes: tuple[str, ...]
    edges: tuple[Dependence, ...]

    @property
    def delay(self) -> int:
        return sum(e.delay for e in self.edges)

    @property
    def distance(self) -> int:
        return sum(e.distance for e in self.edges)

    @property
    def ii_bound(self) -> int:
        """Minimum II this circuit imposes: ceil(delay / distance)."""
        if self.distance <= 0:
            raise DDGError(f"circuit {self.nodes} has zero distance")
        return math.ceil(self.delay / self.distance)

    @property
    def is_memory_carried(self) -> bool:
        """True when every loop-carried edge of the circuit is a memory
        dependence (a *speculatable* recurrence)."""
        carried = [e for e in self.edges if e.distance > 0]
        return bool(carried) and all(e.kind.value == "memory" for e in carried)

    def __str__(self) -> str:
        path = " -> ".join(self.nodes + (self.nodes[0],))
        return f"{path} [delay={self.delay}, distance={self.distance}, " \
               f"II>={self.ii_bound}]"


def elementary_circuits(ddg: DDG, max_circuits: int = 5000) -> list[Circuit]:
    """All elementary circuits of ``ddg`` (Johnson's algorithm), up to
    ``max_circuits``.  Parallel edges between the same node pair yield one
    circuit per edge combination only for the minimal-delay edge — enough
    for II diagnostics without a combinatorial blow-up."""
    # pick, per (src, dst), the tightest edge: max delay, then max distance
    # is NOT what we want — for II bounds the binding edge per pair is the
    # one maximising delay - II*distance, which depends on II; we keep one
    # edge per (pair, distance) instead, which preserves every distinct
    # cycle ratio.
    best: dict[tuple[str, str, int], Dependence] = {}
    for e in ddg.edges:
        key = (e.src, e.dst, e.distance)
        if key not in best or e.delay > best[key].delay:
            best[key] = e
    adj: dict[str, list[Dependence]] = {n.name: [] for n in ddg.nodes}
    for e in best.values():
        adj[e.src].append(e)

    circuits: list[Circuit] = []
    # Johnson's algorithm per SCC, with a global budget
    for comp in strongly_connected_components(ddg):
        comp_set = set(comp)
        if len(comp) == 1:
            name = comp[0]
            for e in adj[name]:
                if e.dst == name:
                    circuits.append(Circuit((name,), (e,)))
            continue
        order = sorted(comp)
        for start in order:
            if len(circuits) >= max_circuits:
                return circuits
            _johnson_from(start, adj, comp_set, circuits, max_circuits)
            comp_set.discard(start)
    return circuits


def _johnson_from(start: str, adj: dict[str, list[Dependence]],
                  allowed: set[str], out: list[Circuit],
                  max_circuits: int) -> None:
    path_nodes: list[str] = [start]
    path_edges: list[Dependence] = []
    blocked: set[str] = {start}
    block_map: dict[str, set[str]] = {}

    def unblock(v: str) -> None:
        blocked.discard(v)
        for w in block_map.pop(v, ()):  # cascade
            if w in blocked:
                unblock(w)

    def circuit(v: str) -> bool:
        found = False
        for e in adj[v]:
            w = e.dst
            if w not in allowed:
                continue
            if w == start:
                if len(out) < max_circuits:
                    out.append(Circuit(tuple(path_nodes),
                                       tuple(path_edges) + (e,)))
                found = True
            elif w not in blocked:
                path_nodes.append(w)
                path_edges.append(e)
                blocked.add(w)
                if circuit(w):
                    found = True
                path_nodes.pop()
                path_edges.pop()
            if len(out) >= max_circuits:
                return found
        if found:
            unblock(v)
        else:
            for e in adj[v]:
                if e.dst in allowed:
                    block_map.setdefault(e.dst, set()).add(v)
        return found

    circuit(start)


def critical_circuits(ddg: DDG, top: int = 5,
                      max_circuits: int = 5000) -> list[Circuit]:
    """The ``top`` circuits with the highest II requirement, ties broken
    toward register-carried (non-speculatable) recurrences."""
    circuits = elementary_circuits(ddg, max_circuits=max_circuits)
    circuits.sort(key=lambda c: (-c.ii_bound, c.is_memory_carried,
                                 len(c.nodes)))
    return circuits[:top]
