"""Data-dependence graphs and their analyses.

The DDG is the scheduler's input: nodes are the loop's instructions (with
their assumed latencies and functional-unit classes), edges are register and
memory dependences with iteration distances and — for memory dependences —
profile-derived manifestation probabilities ``p_d`` (paper Section 4.2).

Analyses: Tarjan SCCs, resource-constrained MII, recurrence-constrained MII
(positive-cycle feasibility test), longest dependence path, ASAP/ALAP/
height/depth used by the SMS node ordering.
"""

from .dependence import Dependence, DepKind, DepType
from .ddg import DDG, DDGNode, build_ddg
from .scc import strongly_connected_components, condensation_order
from .mii import rec_mii, res_mii, compute_mii, is_feasible_ii
from .paths import NodeMetrics, compute_metrics, longest_dependence_path
from .circuits import Circuit, critical_circuits, elementary_circuits

__all__ = [
    "Circuit",
    "DDG",
    "DDGNode",
    "Dependence",
    "DepKind",
    "DepType",
    "NodeMetrics",
    "build_ddg",
    "compute_metrics",
    "compute_mii",
    "critical_circuits",
    "elementary_circuits",
    "condensation_order",
    "is_feasible_ii",
    "longest_dependence_path",
    "rec_mii",
    "res_mii",
    "strongly_connected_components",
]
