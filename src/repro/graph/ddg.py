"""The data-dependence graph and its construction from loop IR.

``build_ddg`` derives:

* **register flow dependences** from def-use chains: a use ``Reg(r, back=k)``
  of the (unique) definition ``u`` of ``r`` carries distance
  ``k`` when the use follows the definition in program order and ``k + 1``
  otherwise;
* **memory dependences** from array subscript analysis — an exact
  single-distance dependence for affine subscript pairs with equal
  coefficients (strong-SIV), and *probabilistic* dependences for irregular
  pairs (indirect subscripts or mismatched coefficients), with per-distance
  probabilities taken from profile data / alias hints, conservatively 1.0
  when neither is available.

All dependences are scheduling constraints (matching the paper, whose
``RecII`` for the motivating example includes the probabilistic memory
dependence ``n5 -> n0``); the *probabilities* only matter to TMS's cost
model and to the SpMT simulator's violation draws.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..errors import DDGError
from ..ir.instruction import Instruction
from ..ir.loop import INDUCTION_VAR, Loop
from ..ir.opcode import Opcode
from ..ir.operand import AffineIndex
from ..machine.latency import LatencyModel
from .dependence import Dependence, DepKind, DepType

__all__ = ["DDGNode", "DDG", "build_ddg"]

#: delay used for anti and output dependences.
_ORDER_DELAY = 1


@dataclass(frozen=True)
class DDGNode:
    """A scheduling node: one instruction with its assumed latency."""

    name: str
    opcode: Opcode
    latency: int
    position: int

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise DDGError(f"node {self.name!r}: latency must be >= 1")


class DDG:
    """An immutable data-dependence graph."""

    def __init__(self, name: str, nodes: Sequence[DDGNode],
                 edges: Iterable[Dependence], *, loop: Loop | None = None) -> None:
        self.name = name
        self.nodes: tuple[DDGNode, ...] = tuple(nodes)
        if not self.nodes:
            raise DDGError(
                f"DDG {name!r} has no nodes; a schedulable loop needs at "
                f"least one instruction")
        self.loop = loop
        self._by_name: dict[str, DDGNode] = {}
        for node in self.nodes:
            if node.name in self._by_name:
                raise DDGError(f"duplicate DDG node {node.name!r}")
            self._by_name[node.name] = node
        self.edges: tuple[Dependence, ...] = tuple(edges)
        self._preds: dict[str, list[Dependence]] = {n.name: [] for n in self.nodes}
        self._succs: dict[str, list[Dependence]] = {n.name: [] for n in self.nodes}
        for e in self.edges:
            if e.src not in self._by_name or e.dst not in self._by_name:
                raise DDGError(f"edge {e} references unknown node")
            self._succs[e.src].append(e)
            self._preds[e.dst].append(e)
        self._check_intra_iteration_acyclic()

    # -- basic queries -----------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(n.name for n in self.nodes)

    def node(self, name: str) -> DDGNode:
        try:
            return self._by_name[name]
        except KeyError:
            raise DDGError(f"DDG {self.name!r} has no node {name!r}") from None

    def latency(self, name: str) -> int:
        return self.node(name).latency

    def preds(self, name: str) -> list[Dependence]:
        """Incoming dependence edges of ``name``."""
        return list(self._preds[name])

    def succs(self, name: str) -> list[Dependence]:
        """Outgoing dependence edges of ``name``."""
        return list(self._succs[name])

    def opcodes(self) -> list[Opcode]:
        return [n.opcode for n in self.nodes]

    def register_flow_edges(self) -> list[Dependence]:
        return [e for e in self.edges if e.is_register_flow]

    def memory_flow_edges(self) -> list[Dependence]:
        return [e for e in self.edges if e.is_memory_flow]

    # -- validation ----------------------------------------------------------

    def _check_intra_iteration_acyclic(self) -> None:
        """Distance-0 edges must form a DAG (a same-iteration cycle is
        unexecutable)."""
        indeg: dict[str, int] = {n.name: 0 for n in self.nodes}
        adj: dict[str, list[str]] = {n.name: [] for n in self.nodes}
        for e in self.edges:
            if e.distance == 0:
                adj[e.src].append(e.dst)
                indeg[e.dst] += 1
        queue = [n for n, d in indeg.items() if d == 0]
        seen = 0
        while queue:
            u = queue.pop()
            seen += 1
            for v in adj[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    queue.append(v)
        if seen != len(self.nodes):
            raise DDGError(
                f"DDG {self.name!r}: intra-iteration (distance-0) dependences "
                f"form a cycle")

    def describe(self) -> str:
        lines = [f"DDG {self.name}: {len(self.nodes)} nodes, {len(self.edges)} edges"]
        for n in self.nodes:
            lines.append(f"  {n.name}: {n.opcode.value} (lat {n.latency})")
        for e in self.edges:
            lines.append(f"  {e}")
        return "\n".join(lines)


def build_ddg(
    loop: Loop,
    latency: LatencyModel,
    *,
    probabilities: Mapping[tuple[str, str, int], float] | None = None,
    include_reg_anti: bool = False,
    max_irregular_distance: int = 1,
    default_irregular_probability: float = 1.0,
    lsq_threshold: float = 0.1,
) -> DDG:
    """Construct the DDG of ``loop``.

    Parameters
    ----------
    probabilities:
        Profile data: ``(producer, consumer, distance) -> p_d`` for irregular
        memory pairs, as produced by
        :func:`repro.workloads.memprofile.profile_memory_dependences`.
    include_reg_anti:
        Also emit register anti/output dependences (only meaningful when the
        post-pass renaming is disabled; GCC's SMS schedules virtual
        registers, so the default is off).
    max_irregular_distance:
        Largest loop-carried distance emitted for irregular pairs when no
        profile/hint information exists (a distance-1 edge is the tightest
        constraint and subsumes larger distances for scheduling purposes).
    default_irregular_probability:
        ``p_d`` assumed for unprofiled irregular pairs.
    lsq_threshold:
        *Intra-iteration* (distance-0) memory dependences with probability
        below this threshold are not emitted as scheduling edges: both
        accesses execute in the same thread, where the out-of-order core's
        load-store queue disambiguates them dynamically — the compiler need
        not serialise unlikely same-iteration aliases.  (Without this,
        every pair of indirect accesses in a body chains serially and an
        smvp-style loop's LDP explodes far past anything the paper
        reports.)  Loop-carried dependences are always kept: those cross
        threads, where only MDT speculation or synchronisation can cover
        them.
    """
    positions = {ins.name: idx for idx, ins in enumerate(loop.body)}
    nodes = [
        DDGNode(name=ins.name, opcode=ins.opcode, latency=latency.of(ins),
                position=positions[ins.name])
        for ins in loop.body
    ]
    edges: dict[tuple, Dependence] = {}

    def add(dep: Dependence) -> None:
        key = (dep.src, dep.dst, dep.kind, dep.dtype, dep.distance)
        old = edges.get(key)
        if old is None or (dep.probability, dep.delay) > (old.probability, old.delay):
            edges[key] = dep

    _add_register_deps(loop, latency, positions, add, include_reg_anti)
    _add_memory_deps(loop, latency, positions, add,
                     probabilities or {}, max_irregular_distance,
                     default_irregular_probability, lsq_threshold)
    return DDG(loop.name, nodes, edges.values(), loop=loop)


# ---------------------------------------------------------------------------
# register dependences
# ---------------------------------------------------------------------------

def _add_register_deps(loop: Loop, latency: LatencyModel,
                       positions: Mapping[str, int], add, include_anti: bool) -> None:
    definers = loop.definers()
    for v in loop.body:
        for reg in v.reg_reads:
            if reg.name == INDUCTION_VAR:
                continue
            u = definers.get(reg.name)
            if u is None:
                continue  # pure live-in, no loop-carried producer
            distance = reg.back + (0 if positions[u.name] < positions[v.name] else 1)
            add(Dependence(src=u.name, dst=v.name, kind=DepKind.REGISTER,
                           dtype=DepType.FLOW, distance=distance,
                           delay=latency.of(u)))
            if include_anti and reg.back == 0:
                # the next redefinition of the register kills the value this
                # use reads; with back-references renaming is mandatory and
                # anti dependences are meaningless.
                anti_distance = 0 if positions[v.name] < positions[u.name] else 1
                add(Dependence(src=v.name, dst=u.name, kind=DepKind.REGISTER,
                               dtype=DepType.ANTI, distance=anti_distance,
                               delay=_ORDER_DELAY))
    if include_anti:
        for u in definers.values():
            add(Dependence(src=u.name, dst=u.name, kind=DepKind.REGISTER,
                           dtype=DepType.OUTPUT, distance=1, delay=_ORDER_DELAY))


# ---------------------------------------------------------------------------
# memory dependences
# ---------------------------------------------------------------------------

def _add_memory_deps(loop: Loop, latency: LatencyModel,
                     positions: Mapping[str, int], add,
                     probabilities: Mapping[tuple[str, str, int], float],
                     max_irregular_distance: int,
                     default_probability: float,
                     lsq_threshold: float) -> None:
    by_array: dict[str, list[Instruction]] = {}
    for ins in loop.body:
        if ins.mem is not None:
            by_array.setdefault(ins.mem.array, []).append(ins)

    for accesses in by_array.values():
        for u in accesses:
            for v in accesses:
                dtype = _mem_dep_type(u, v)
                if dtype is None:
                    continue
                delay = latency.of(u) if dtype is DepType.FLOW else _ORDER_DELAY
                for distance, prob in _mem_dep_distances(
                        u, v, positions, probabilities,
                        max_irregular_distance, default_probability):
                    if distance == 0 and u.name == v.name:
                        continue
                    if distance == 0 and prob < lsq_threshold:
                        # same-thread unlikely alias: the core's load-store
                        # queue disambiguates it dynamically.
                        continue
                    add(Dependence(src=u.name, dst=v.name, kind=DepKind.MEMORY,
                                   dtype=dtype, distance=distance, delay=delay,
                                   probability=prob))


def _mem_dep_type(u: Instruction, v: Instruction) -> DepType | None:
    if u.opcode.is_store and v.opcode.is_load:
        return DepType.FLOW
    if u.opcode.is_load and v.opcode.is_store:
        return DepType.ANTI
    if u.opcode.is_store and v.opcode.is_store:
        return DepType.OUTPUT
    return None


def _mem_dep_distances(
    u: Instruction, v: Instruction, positions: Mapping[str, int],
    probabilities: Mapping[tuple[str, str, int], float],
    max_irregular_distance: int, default_probability: float,
) -> list[tuple[int, float]]:
    """Distances (with probabilities) at which ``v`` may depend on ``u``."""
    iu, iv = u.mem.index, v.mem.index
    min_d = 0 if positions[u.name] < positions[v.name] else 1

    if isinstance(iu, AffineIndex) and isinstance(iv, AffineIndex):
        if iu.coeff == iv.coeff and iu.coeff != 0:
            # strong SIV: address_u(j) == address_v(j + d)
            num = iu.offset - iv.offset
            if num % iu.coeff != 0:
                return []
            d = num // iu.coeff
            return [(d, 1.0)] if d >= min_d else []
        if iu.coeff == 0 and iv.coeff == 0:
            # two loop-invariant addresses: conflict every iteration iff equal
            if iu.offset != iv.offset:
                return []
            return [(d, 1.0) for d in range(min_d, max(min_d, 1) + 1)]
        # mismatched strides: fall through to the irregular path

    # irregular pair: consult profile data, then alias hints, then the
    # conservative default.
    out: list[tuple[int, float]] = []
    for (prod, cons, d), p in probabilities.items():
        if prod == u.name and cons == v.name and d >= min_d and p > 0.0:
            out.append((d, p))
    if out:
        return sorted(out)
    for hint in v.alias_hints:
        if hint.producer == u.name and hint.distance >= min_d:
            out.append((hint.distance, hint.probability))
    if out:
        return sorted(out)
    return [(d, default_probability)
            for d in range(min_d, max(min_d, max_irregular_distance) + 1)]
