"""Acyclic path metrics: ASAP/ALAP, depth, height, mobility, LDP.

These are computed over the *intra-iteration* (distance-0) sub-DAG, which is
what SMS's node ordering consumes and what the paper's ``LDP`` ("longest
dependence path in the DDG of the loop") measures: the schedule length of one
iteration given unlimited resources.  The gap between a schedule's II and the
LDP is the paper's proxy for exploited ILP (Section 5).
"""

from __future__ import annotations

from dataclasses import dataclass

from .ddg import DDG

__all__ = ["NodeMetrics", "compute_metrics", "longest_dependence_path"]


@dataclass(frozen=True)
class NodeMetrics:
    """Per-node acyclic metrics.

    ``depth``: longest delay-weighted path from any source to this node
    (its ASAP issue cycle).  ``height``: longest delay-weighted path from
    this node to any sink.  ``alap = ldp_issue_span - height`` where
    ``ldp_issue_span`` is the latest ASAP; ``mobility = alap - depth``.
    """

    depth: int
    height: int
    alap: int
    mobility: int


def _topo_order(ddg: DDG) -> list[str]:
    indeg = {n.name: 0 for n in ddg.nodes}
    for e in ddg.edges:
        if e.distance == 0:
            indeg[e.dst] += 1
    order: list[str] = []
    queue = [n.name for n in ddg.nodes if indeg[n.name] == 0]
    while queue:
        u = queue.pop()
        order.append(u)
        for e in ddg.succs(u):
            if e.distance == 0:
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    queue.append(e.dst)
    return order


def compute_metrics(ddg: DDG) -> dict[str, NodeMetrics]:
    """Depth/height/ALAP/mobility for every node (distance-0 subgraph)."""
    order = _topo_order(ddg)
    depth: dict[str, int] = {name: 0 for name in order}
    for u in order:
        for e in ddg.succs(u):
            if e.distance == 0:
                depth[e.dst] = max(depth[e.dst], depth[u] + e.delay)
    height: dict[str, int] = {name: 0 for name in order}
    for u in reversed(order):
        for e in ddg.succs(u):
            if e.distance == 0:
                height[u] = max(height[u], height[e.dst] + e.delay)
    span = max(depth.values(), default=0)
    return {
        name: NodeMetrics(
            depth=depth[name],
            height=height[name],
            alap=span - height[name],
            mobility=span - height[name] - depth[name],
        )
        for name in order
    }


def longest_dependence_path(ddg: DDG) -> int:
    """LDP in cycles: completion time of one iteration with infinite
    resources (issue path length plus the final node's latency)."""
    metrics = compute_metrics(ddg)
    return max(
        (m.depth + max(m.height, ddg.latency(name)) for name, m in metrics.items()),
        default=0,
    )
