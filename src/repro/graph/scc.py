"""Strongly connected components (iterative Tarjan) and their condensation.

SCC structure drives the SMS node ordering: non-trivial SCCs are recurrences
whose ``RecMII`` determines their scheduling priority.
"""

from __future__ import annotations

from typing import Sequence

from .ddg import DDG

__all__ = ["strongly_connected_components", "condensation_order"]


def strongly_connected_components(ddg: DDG) -> list[list[str]]:
    """Tarjan's algorithm, iteratively (loops can be large).

    Returns components as lists of node names, in reverse topological order
    of the condensation (Tarjan's natural output order).
    """
    index: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    succs = {n.name: sorted({e.dst for e in ddg.succs(n.name)}) for n in ddg.nodes}

    for root in ddg.node_names:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_idx = work.pop()
            if child_idx == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            children = succs[node]
            for i in range(child_idx, len(children)):
                child = children[i]
                if child not in index:
                    work.append((node, i + 1))
                    work.append((child, 0))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            if lowlink[node] == index[node]:
                comp: list[str] = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == node:
                        break
                components.append(comp)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return components


def condensation_order(ddg: DDG, components: Sequence[Sequence[str]]
                       ) -> list[int]:
    """Topological order of component indices in the condensation DAG."""
    comp_of: dict[str, int] = {}
    for idx, comp in enumerate(components):
        for name in comp:
            comp_of[name] = idx
    adj: dict[int, set[int]] = {i: set() for i in range(len(components))}
    indeg: dict[int, int] = {i: 0 for i in range(len(components))}
    for e in ddg.edges:
        cu, cv = comp_of[e.src], comp_of[e.dst]
        if cu != cv and cv not in adj[cu]:
            adj[cu].add(cv)
            indeg[cv] += 1
    order: list[int] = []
    queue = sorted(i for i, d in indeg.items() if d == 0)
    while queue:
        u = queue.pop(0)
        order.append(u)
        for v in sorted(adj[u]):
            indeg[v] -= 1
            if indeg[v] == 0:
                queue.append(v)
    return order
