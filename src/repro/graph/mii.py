"""Minimum initiation interval computation.

``MII = max(ResMII, RecMII)``:

* ``ResMII`` comes from the resource model (functional-unit pressure and
  issue width) — :meth:`repro.machine.resources.ResourceModel.res_mii`.
* ``RecMII`` is the smallest II for which no dependence cycle has positive
  slack deficit, i.e. for every cycle C:
  ``sum(delay(e)) <= II * sum(distance(e))``.  We test a candidate II by
  looking for a positive-weight cycle under edge weights
  ``delay(e) - II * distance(e)`` (Bellman-Ford style relaxation) and
  binary-search the smallest feasible integer II.  This avoids enumerating
  elementary circuits, which can be exponential in loops like lucas's
  169-instruction bodies.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from ..errors import DDGError
from ..machine.resources import ResourceModel
from .ddg import DDG

__all__ = ["res_mii", "rec_mii", "compute_mii", "is_feasible_ii", "scc_rec_mii"]


def res_mii(ddg: DDG, resources: ResourceModel) -> int:
    """Resource-constrained MII."""
    return resources.res_mii(ddg.opcodes())


def is_feasible_ii(ddg: DDG, ii: int, nodes: Iterable[str] | None = None) -> bool:
    """True iff no dependence cycle (within ``nodes``) requires II > ``ii``.

    Uses Bellman-Ford positive-cycle detection on edge weights
    ``delay - ii * distance``.
    """
    if ii < 1:
        return False
    node_set = set(nodes) if nodes is not None else set(ddg.node_names)
    edges = [e for e in ddg.edges if e.src in node_set and e.dst in node_set]
    if not edges:
        return True
    dist: dict[str, float] = {n: 0.0 for n in node_set}
    n = len(node_set)
    for round_no in range(n):
        changed = False
        for e in edges:
            w = e.delay - ii * e.distance
            if dist[e.src] + w > dist[e.dst]:
                dist[e.dst] = dist[e.src] + w
                changed = True
        if not changed:
            return True
    return False  # still relaxing after |V| rounds -> positive cycle


def rec_mii(ddg: DDG, nodes: Iterable[str] | None = None) -> int:
    """Recurrence-constrained MII (1 when there are no recurrences)."""
    node_set = set(nodes) if nodes is not None else set(ddg.node_names)
    edges = [e for e in ddg.edges if e.src in node_set and e.dst in node_set]
    loop_carried = [e for e in edges if e.distance > 0]
    if not loop_carried:
        return 1
    hi = max(1, sum(e.delay for e in edges))
    if not is_feasible_ii(ddg, hi, node_set):
        raise DDGError(
            f"DDG {ddg.name!r}: no feasible II up to {hi} "
            f"(a zero-distance cycle slipped through?)")
    lo = 1
    while lo < hi:
        mid = (lo + hi) // 2
        if is_feasible_ii(ddg, mid, node_set):
            hi = mid
        else:
            lo = mid + 1
    return lo


def compute_mii(ddg: DDG, resources: ResourceModel) -> int:
    """``max(ResMII, RecMII)``."""
    return max(res_mii(ddg, resources), rec_mii(ddg))


def scc_rec_mii(ddg: DDG, components: Sequence[Sequence[str]]) -> list[int]:
    """Per-SCC RecMII (1 for trivial single-node components without a
    self-dependence)."""
    out: list[int] = []
    for comp in components:
        if len(comp) == 1:
            name = comp[0]
            self_edges = [e for e in ddg.succs(name) if e.dst == name]
            if not self_edges:
                out.append(1)
                continue
            out.append(max(1, max(math.ceil(e.delay / e.distance)
                                  for e in self_edges)))
            continue
        out.append(rec_mii(ddg, comp))
    return out
