"""Figure 5: speedups of TMS over single-threaded code.

For each Table-3 loop, the TMS kernel runs on the quad-core SpMT machine
and is compared against the original loop executing single-threaded
(acyclic list schedule on one core with ideal out-of-order iteration
overlap — generous to the baseline).  Program speedups compose through
Amdahl with each loop's coverage.

Expected shape (paper): loop speedups between ~37% and ~210% (avg 73%);
equake's huge coverage gives the largest program speedup (~24%); program
average ~12%.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ArchConfig, SchedulerConfig
from ..machine.resources import ResourceModel
from ..spmt.single import simulate_sequential
from .fig4 import amdahl
from .report import format_table, pct
from .table3 import Table3Row, run_table3

__all__ = ["Fig5Row", "run_fig5", "render_fig5"]


@dataclass(frozen=True)
class Fig5Row:
    """One loop's TMS-vs-single-threaded result."""

    loop: str
    benchmark: str
    coverage: float
    single_cycles: float
    tms_cycles: float
    loop_speedup: float
    program_speedup: float


def run_fig5(arch: ArchConfig | None = None,
             config: SchedulerConfig | None = None,
             iterations: int = 1000,
             table3_rows: list[Table3Row] | None = None,
             session=None, jobs: int | None = None) -> list[Fig5Row]:
    from ..session import get_session
    arch = arch or ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    session = session or get_session()
    if table3_rows is None:
        table3_rows = run_table3(arch, config, keep_compiled=True,
                                 session=session, jobs=jobs)
    pairs = [(sl, compiled) for row in table3_rows
             for sl, compiled in zip(row.selected, row.compiled)]
    tms_stats = session.simulate_many(
        [compiled.tms for _sl, compiled in pairs], arch, iterations,
        jobs=jobs)
    out: list[Fig5Row] = []
    for (sl, compiled), tms in zip(pairs, tms_stats):
        single = simulate_sequential(compiled.ddg, resources, iterations)
        speedup = (single.total_cycles / tms.total_cycles
                   if tms.total_cycles else 1.0)
        out.append(Fig5Row(
            loop=compiled.name,
            benchmark=sl.benchmark,
            coverage=sl.coverage,
            single_cycles=single.total_cycles,
            tms_cycles=tms.total_cycles,
            loop_speedup=speedup,
            program_speedup=amdahl(sl.coverage, speedup),
        ))
    return out


def render_fig5(rows: list[Fig5Row]) -> str:
    table_rows = [
        [r.loop, r.benchmark, f"{100 * r.coverage:.1f}%",
         pct(r.loop_speedup - 1.0), pct(r.program_speedup - 1.0)]
        for r in rows
    ]
    if rows:
        avg_loop = sum(r.loop_speedup for r in rows) / len(rows)
        avg_prog = sum(r.program_speedup for r in rows) / len(rows)
        table_rows.append(["AVERAGE", "", "",
                           pct(avg_loop - 1.0), pct(avg_prog - 1.0)])
        table_rows.append(["(paper avg)", "", "", "+73.0%", "+12.0%"])
    return format_table(
        ["Loop", "Benchmark", "LC", "Loop speedup", "Program speedup"],
        table_rows,
        title="Figure 5. Speedups of TMS over single-threaded code.")
