"""Figure 6: synchronisation behaviour of TMS vs SMS on the Table-3 loops.

Three panels, all measured over committed threads on the quad-core machine:

* (a) synchronisation stalls — total cycles stalled at a RECV on an empty
  receive queue.  Expected: TMS cuts stalls by >50% for art/equake/fma3d;
  lucas less (its C_delay is pinned at its recurrence).
* (b) dynamic SEND/RECV pair increase — TMS trades a few extra register
  communications (largest for lucas: about three extra pairs/iteration)
  for the stall reduction.
* (c) communication overhead — stalls + C_reg_com x pairs.  Expected:
  still a clear reduction under TMS.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ArchConfig, SchedulerConfig
from .report import format_table, pct, ratio
from .table3 import Table3Row, run_table3

__all__ = ["Fig6Row", "run_fig6", "render_fig6"]


@dataclass(frozen=True)
class Fig6Row:
    """Per-benchmark aggregate over its selected loops."""

    benchmark: str
    sms_stall_cycles: float
    tms_stall_cycles: float
    sms_pairs: int
    tms_pairs: int
    sms_comm_overhead: float
    tms_comm_overhead: float
    iterations: int

    @property
    def stall_reduction(self) -> float:
        """Fraction of SMS stall cycles eliminated by TMS."""
        return 1.0 - ratio(self.tms_stall_cycles, self.sms_stall_cycles) \
            if self.sms_stall_cycles else 0.0

    @property
    def pair_increase(self) -> float:
        """Relative increase in dynamic SEND/RECV pairs under TMS."""
        return ratio(self.tms_pairs, self.sms_pairs) - 1.0 \
            if self.sms_pairs else 0.0

    @property
    def extra_pairs_per_iteration(self) -> float:
        return (self.tms_pairs - self.sms_pairs) / self.iterations \
            if self.iterations else 0.0

    @property
    def comm_reduction(self) -> float:
        return 1.0 - ratio(self.tms_comm_overhead, self.sms_comm_overhead) \
            if self.sms_comm_overhead else 0.0


def run_fig6(arch: ArchConfig | None = None,
             config: SchedulerConfig | None = None,
             iterations: int = 1000,
             table3_rows: list[Table3Row] | None = None,
             session=None, jobs: int | None = None) -> list[Fig6Row]:
    from ..session import get_session
    arch = arch or ArchConfig.paper_default()
    session = session or get_session()
    if table3_rows is None:
        table3_rows = run_table3(arch, config, keep_compiled=True,
                                 session=session, jobs=jobs)
    out: list[Fig6Row] = []
    for row in table3_rows:
        kernels = [alg for compiled in row.compiled
                   for alg in (compiled.sms, compiled.tms)]
        stats = session.simulate_many(kernels, arch, iterations, jobs=jobs)
        sms_stall = tms_stall = 0.0
        sms_pairs = tms_pairs = 0
        sms_comm = tms_comm = 0.0
        for i, compiled in enumerate(row.compiled):
            sms_stats, tms_stats = stats[2 * i], stats[2 * i + 1]
            sms_stall += sms_stats.sync_stall_cycles
            tms_stall += tms_stats.sync_stall_cycles
            sms_pairs += sms_stats.send_recv_pairs
            tms_pairs += tms_stats.send_recv_pairs
            sms_comm += sms_stats.communication_overhead
            tms_comm += tms_stats.communication_overhead
        out.append(Fig6Row(
            benchmark=row.benchmark,
            sms_stall_cycles=sms_stall,
            tms_stall_cycles=tms_stall,
            sms_pairs=sms_pairs,
            tms_pairs=tms_pairs,
            sms_comm_overhead=sms_comm,
            tms_comm_overhead=tms_comm,
            iterations=iterations * len(row.compiled),
        ))
    return out


def render_fig6(rows: list[Fig6Row]) -> str:
    table_rows = [
        [r.benchmark,
         f"{r.sms_stall_cycles:.0f}", f"{r.tms_stall_cycles:.0f}",
         pct(-r.stall_reduction),
         pct(r.pair_increase), f"{r.extra_pairs_per_iteration:+.2f}",
         pct(-r.comm_reduction)]
        for r in rows
    ]
    return format_table(
        ["Benchmark", "SMS stalls", "TMS stalls", "stall delta",
         "pairs delta", "pairs/iter delta", "comm-ovh delta"],
        table_rows,
        title="Figure 6. Synchronisation of TMS vs SMS "
              "(negative deltas = TMS reduction).")
