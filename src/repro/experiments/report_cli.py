"""``tms-experiments report``: the perf-regression observatory.

Renders the run ledger (:mod:`repro.obs.ledger`) and any benchmark JSON
files — both the repo's own shape (``benchmarks/bench_sched.py --out``)
and pytest-benchmark's ``--benchmark-json`` shape — as a markdown report
and, optionally, a self-contained HTML dashboard (inline CSS, no
external assets, safe to archive as a CI artifact).

``--check`` turns the report into a gate: every tracked metric (a
lower-is-better seconds value) of each ``--bench`` file is compared
against its baseline — an explicitly paired ``--against`` file, or the
same-named file under ``--baselines`` (default
``benchmarks/baselines/``).  A metric exceeding
``baseline * (1 + threshold)`` is a regression; the command prints every
offender and exits with :data:`EXIT_REGRESSION` (raised internally as
:class:`~repro.errors.PerfRegressionError`).  Comparisons are
file-vs-file, never wall-clock-vs-constant, so the gate is meaningful on
any machine that produced both files.
"""

from __future__ import annotations

import argparse
import html
import json
import sys
from pathlib import Path
from typing import Any

from ..errors import PerfRegressionError

__all__ = ["EXIT_REGRESSION", "add_report_arguments", "check_regressions",
           "extract_bench_metrics", "run_report_command"]

#: typed exit code of ``report --check`` on a detected regression.
EXIT_REGRESSION = 3

#: default baseline directory, relative to the working tree.
DEFAULT_BASELINES = Path("benchmarks") / "baselines"


def add_report_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ledger", default=None, metavar="FILE",
                        help="ledger JSONL to render (default: "
                             "$REPRO_LEDGER_DIR/ledger.jsonl when set)")
    parser.add_argument("--bench", action="append", default=None,
                        metavar="FILE",
                        help="benchmark JSON file(s) to include (repeatable; "
                             "bench_sched --out or pytest-benchmark shape)")
    parser.add_argument("--against", action="append", default=None,
                        metavar="FILE",
                        help="baseline JSON paired positionally with each "
                             "--bench (default: the same-named file under "
                             "--baselines)")
    parser.add_argument("--baselines", default=None, metavar="DIR",
                        help=f"baseline directory (default: "
                             f"{DEFAULT_BASELINES})")
    parser.add_argument("--markdown", default=None, metavar="FILE",
                        help="also write the markdown report to this file")
    parser.add_argument("--html", default=None, metavar="FILE",
                        help="write a self-contained HTML dashboard here")
    parser.add_argument("--check", action="store_true",
                        help=f"exit {EXIT_REGRESSION} if any tracked metric "
                             f"regressed beyond --threshold vs its baseline")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed fractional slowdown before --check "
                             "fails (default: 0.10 = 10%%)")


# -- metric extraction --------------------------------------------------------

def extract_bench_metrics(data: dict[str, Any],
                          label: str) -> dict[str, float]:
    """The tracked (lower-is-better, seconds) metrics of one bench JSON.

    Understands both shapes in this repo: the ``bench_sched.py`` report
    (``total_seconds`` + ``per_kernel_seconds``) and pytest-benchmark's
    ``--benchmark-json`` (``benchmarks[*].stats.mean``).
    """
    out: dict[str, float] = {}
    if isinstance(data.get("total_seconds"), (int, float)):
        out[f"{label}.total_seconds"] = float(data["total_seconds"])
    for entry in data.get("benchmarks") or []:
        if not isinstance(entry, dict):
            continue
        mean = (entry.get("stats") or {}).get("mean")
        if isinstance(mean, (int, float)):
            out[f"{label}.{entry.get('name', '?')}.mean_seconds"] = \
                float(mean)
    return out


def check_regressions(current: dict[str, float],
                      baseline: dict[str, float],
                      threshold: float) -> list[dict[str, Any]]:
    """Rows for every metric present in both maps; ``regressed`` is set
    where current exceeds ``baseline * (1 + threshold)``."""
    rows = []
    for name in sorted(set(current) & set(baseline)):
        cur, base = current[name], baseline[name]
        ratio = cur / base if base > 0 else float("inf") if cur > 0 else 1.0
        rows.append({
            "metric": name,
            "current": cur,
            "baseline": base,
            "ratio": ratio,
            "regressed": ratio > 1.0 + threshold,
        })
    return rows


def _resolve_baseline(bench: Path, against: Path | None,
                      baselines_dir: Path) -> Path | None:
    if against is not None:
        return against
    for candidate in (baselines_dir / bench.name,
                      baselines_dir / f"{bench.stem}_seed.json"):
        if candidate.exists():
            return candidate
    return None


# -- rendering ----------------------------------------------------------------

def _fmt_metric_value(value: Any) -> str:
    if isinstance(value, dict):
        return f"n={value.get('count', 0)}"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _ledger_section(records: list[dict], skipped: int,
                    path: Path | None) -> list[str]:
    lines = ["## Run ledger", ""]
    if path is None:
        lines += ["No ledger configured (set `REPRO_LEDGER_DIR` or pass "
                  "`--ledger`).", ""]
        return lines
    lines.append(f"`{path}` — {len(records)} records"
                 + (f", {skipped} corrupt lines skipped" if skipped else "")
                 + ".")
    lines.append("")
    if not records:
        return lines
    lines += ["| timestamp | command | exit | seconds | compiles "
              "| simulations | sim runs | spans |",
              "|---|---|---:|---:|---:|---:|---:|---:|"]
    for r in records:
        m = r.get("metrics", {})
        spans = sum(int(s.get("count", 0)) for s in r.get("spans", []))
        lines.append(
            f"| {r.get('timestamp', '')} | {r.get('command', '')} "
            f"| {r.get('exit_code', '')} "
            f"| {r.get('duration_seconds', 0.0):.2f} "
            f"| {_fmt_metric_value(m.get('session.compiles', 0))} "
            f"| {_fmt_metric_value(m.get('session.simulations', 0))} "
            f"| {_fmt_metric_value(m.get('sim.runs', 0))} "
            f"| {spans} |")
    lines.append("")
    return lines


def _bench_sections(bench_reports: list[dict]) -> list[str]:
    lines = ["## Benchmarks", ""]
    if not bench_reports:
        lines += ["No benchmark files given (`--bench FILE`).", ""]
        return lines
    for rep in bench_reports:
        lines.append(f"### {rep['path']}")
        lines.append("")
        base_label = rep["baseline_path"] or "none found"
        lines.append(f"Baseline: `{base_label}`")
        lines.append("")
        if rep["rows"]:
            lines += ["| metric | current | baseline | ratio | status |",
                      "|---|---:|---:|---:|---|"]
            for row in rep["rows"]:
                status = "**REGRESSED**" if row["regressed"] else "ok"
                lines.append(
                    f"| {row['metric']} | {row['current']:.4f} "
                    f"| {row['baseline']:.4f} | {row['ratio']:.3f}x "
                    f"| {status} |")
        else:
            lines += ["| metric | current |", "|---|---:|"]
            for name, value in sorted(rep["metrics"].items()):
                lines.append(f"| {name} | {value:.4f} |")
        lines.append("")
    return lines


def render_markdown(records: list[dict], skipped: int,
                    ledger_path: Path | None,
                    bench_reports: list[dict],
                    threshold: float, checked: bool) -> str:
    lines = ["# repro perf & run report", ""]
    lines += _ledger_section(records, skipped, ledger_path)
    lines += _bench_sections(bench_reports)
    if checked:
        regressions = [row for rep in bench_reports
                       for row in rep["rows"] if row["regressed"]]
        lines += ["## Regression check", ""]
        if regressions:
            lines.append(f"{len(regressions)} metric(s) regressed beyond "
                         f"{threshold:.0%}:")
            lines += [f"- `{r['metric']}`: {r['current']:.4f} vs "
                      f"{r['baseline']:.4f} ({r['ratio']:.3f}x)"
                      for r in regressions]
        else:
            lines.append(f"All compared metrics within {threshold:.0%} of "
                         f"baseline.")
        lines.append("")
    return "\n".join(lines)


def _bar(fraction: float, color: str) -> str:
    width = max(1.0, min(100.0, fraction * 100.0))
    return (f'<div class="bar" style="width:{width:.1f}%;'
            f'background:{color}"></div>')


def render_html(records: list[dict], skipped: int,
                ledger_path: Path | None,
                bench_reports: list[dict], threshold: float) -> str:
    """A self-contained dashboard: no scripts, no external assets."""
    esc = html.escape
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        "<title>repro perf dashboard</title><style>",
        "body{font-family:system-ui,sans-serif;margin:2rem;color:#222}",
        "table{border-collapse:collapse;margin:0.5rem 0}",
        "td,th{border:1px solid #ccc;padding:0.25rem 0.6rem;"
        "font-size:0.9rem}",
        "th{background:#f0f0f0;text-align:left}",
        ".bar{height:0.8rem;border-radius:2px}",
        ".cell{min-width:12rem}",
        ".bad{color:#b00020;font-weight:bold}",
        ".ok{color:#2e7d32}",
        "</style></head><body>",
        "<h1>repro perf dashboard</h1>",
    ]
    parts.append("<h2>Run ledger</h2>")
    if ledger_path is None:
        parts.append("<p>No ledger configured.</p>")
    else:
        parts.append(f"<p><code>{esc(str(ledger_path))}</code> — "
                     f"{len(records)} records"
                     + (f", {skipped} corrupt lines skipped" if skipped
                        else "") + "</p>")
        if records:
            max_dur = max((r.get("duration_seconds", 0.0) for r in records),
                          default=0.0) or 1.0
            parts.append("<table><tr><th>timestamp</th><th>command</th>"
                         "<th>exit</th><th>seconds</th>"
                         "<th class='cell'>duration</th></tr>")
            for r in records:
                dur = r.get("duration_seconds", 0.0)
                parts.append(
                    f"<tr><td>{esc(str(r.get('timestamp', '')))}</td>"
                    f"<td>{esc(str(r.get('command', '')))}</td>"
                    f"<td>{r.get('exit_code', '')}</td>"
                    f"<td>{dur:.2f}</td>"
                    f"<td class='cell'>{_bar(dur / max_dur, '#4c7fb5')}"
                    f"</td></tr>")
            parts.append("</table>")
    parts.append("<h2>Benchmarks</h2>")
    if not bench_reports:
        parts.append("<p>No benchmark files given.</p>")
    for rep in bench_reports:
        parts.append(f"<h3>{esc(rep['path'])}</h3>")
        parts.append(f"<p>Baseline: <code>"
                     f"{esc(rep['baseline_path'] or 'none found')}"
                     f"</code></p>")
        rows = rep["rows"]
        if rows:
            parts.append("<table><tr><th>metric</th><th>current</th>"
                         "<th>baseline</th><th>ratio</th>"
                         "<th class='cell'>vs baseline</th></tr>")
            for row in rows:
                color = "#b00020" if row["regressed"] else "#2e7d32"
                cls = "bad" if row["regressed"] else "ok"
                parts.append(
                    f"<tr><td>{esc(row['metric'])}</td>"
                    f"<td>{row['current']:.4f}</td>"
                    f"<td>{row['baseline']:.4f}</td>"
                    f"<td class='{cls}'>{row['ratio']:.3f}x</td>"
                    f"<td class='cell'>"
                    f"{_bar(min(row['ratio'], 2.0) / 2.0, color)}"
                    f"</td></tr>")
            parts.append("</table>")
        elif rep["metrics"]:
            parts.append("<table><tr><th>metric</th><th>current</th></tr>")
            for name, value in sorted(rep["metrics"].items()):
                parts.append(f"<tr><td>{esc(name)}</td>"
                             f"<td>{value:.4f}</td></tr>")
            parts.append("</table>")
    parts.append(f"<p>Regression threshold: {threshold:.0%}</p>")
    parts.append("</body></html>")
    return "\n".join(parts)


# -- the command --------------------------------------------------------------

def run_report_command(ns: argparse.Namespace) -> int:
    from ..obs.ledger import LEDGER_FILENAME, ledger_dir, read_ledger

    ledger_path: Path | None = None
    if ns.ledger:
        ledger_path = Path(ns.ledger)
    else:
        env_dir = ledger_dir()
        if env_dir is not None:
            ledger_path = env_dir / LEDGER_FILENAME
    records: list[dict] = []
    skipped = 0
    if ledger_path is not None:
        records, skipped = read_ledger(ledger_path)

    bench_paths = [Path(p) for p in (ns.bench or [])]
    against = [Path(p) for p in (ns.against or [])]
    if against and len(against) != len(bench_paths):
        print(f"error: {len(against)} --against for "
              f"{len(bench_paths)} --bench (pair them positionally)",
              file=sys.stderr)
        return 1
    baselines_dir = Path(ns.baselines) if ns.baselines \
        else DEFAULT_BASELINES
    bench_reports: list[dict] = []
    for i, bench in enumerate(bench_paths):
        try:
            data = json.loads(bench.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            print(f"error: cannot read bench JSON {bench}: {exc}",
                  file=sys.stderr)
            return 1
        metrics = extract_bench_metrics(data, bench.stem)
        base_path = _resolve_baseline(
            bench, against[i] if against else None, baselines_dir)
        rows: list[dict] = []
        if base_path is not None:
            try:
                base_data = json.loads(
                    base_path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                print(f"error: cannot read baseline JSON {base_path}: "
                      f"{exc}", file=sys.stderr)
                return 1
            rows = check_regressions(
                metrics, extract_bench_metrics(base_data, bench.stem),
                ns.threshold)
        bench_reports.append({
            "path": str(bench),
            "baseline_path": str(base_path) if base_path else None,
            "metrics": metrics,
            "rows": rows,
        })

    markdown = render_markdown(records, skipped, ledger_path,
                               bench_reports, ns.threshold, ns.check)
    print(markdown)
    if ns.markdown:
        Path(ns.markdown).parent.mkdir(parents=True, exist_ok=True)
        Path(ns.markdown).write_text(markdown, encoding="utf-8")
        print(f"[markdown -> {ns.markdown}]", file=sys.stderr)
    if ns.html:
        dashboard = render_html(records, skipped, ledger_path,
                                bench_reports, ns.threshold)
        Path(ns.html).parent.mkdir(parents=True, exist_ok=True)
        Path(ns.html).write_text(dashboard, encoding="utf-8")
        print(f"[dashboard -> {ns.html}]", file=sys.stderr)

    if ns.check:
        regressions = [row for rep in bench_reports
                       for row in rep["rows"] if row["regressed"]]
        compared = sum(len(rep["rows"]) for rep in bench_reports)
        try:
            if regressions:
                names = ", ".join(r["metric"] for r in regressions)
                raise PerfRegressionError(
                    f"{len(regressions)} metric(s) regressed beyond "
                    f"{ns.threshold:.0%}: {names}")
        except PerfRegressionError as exc:
            print(f"REGRESSION: {exc}", file=sys.stderr)
            return EXIT_REGRESSION
        print(f"[check: {compared} metrics within {ns.threshold:.0%} "
              f"of baseline]", file=sys.stderr)
    return 0
