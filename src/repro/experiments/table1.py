"""Table 1: the simulated architecture."""

from __future__ import annotations

from ..config import ArchConfig
from .report import format_table

__all__ = ["table1"]


def table1(arch: ArchConfig | None = None) -> str:
    """Render Table 1 for the given (default: paper) architecture."""
    arch = arch or ArchConfig.paper_default()
    return format_table(
        ["Parameter", "Values"],
        arch.as_table(),
        title="Table 1. Architecture simulated.",
    )
