"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "pct", "ratio"]


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def pct(x: float) -> str:
    """Format a ratio-minus-one as a percentage ('+28.0%')."""
    return f"{100.0 * x:+.1f}%"


def ratio(a: float, b: float) -> float:
    """Safe division."""
    return a / b if b else 0.0
