"""Ablations of the design choices DESIGN.md calls out.

* ``run_pmax_sweep`` — the paper's "several values for P_max can be tried":
  how the threshold trades misspeculation frequency against C_delay/II.
* ``run_comm_latency_sweep`` — sensitivity to the scalar-operand-network
  latency (1/3/6-cycle; the paper's machine uses 3).
* ``run_core_sweep`` — 2/4/8 cores: the objective F depends on ncore, so
  TMS picks different (II, C_delay) trade-offs per machine width.
* ``run_scheduler_comparison`` — SMS vs IMS vs Huff vs TMS kernels on the
  SpMT machine (the paper: "our work is not tied to any existing modulo
  scheduling algorithm"; Huff's lifetime-sensitive scheduler is its
  reference [9]).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import ArchConfig, SchedulerConfig
from ..machine.resources import ResourceModel
from ..sched.huff import HuffModuloScheduler
from ..sched.ims import IterativeModuloScheduler
from ..workloads.doacross import DOACROSS_LOOPS
from .pipeline import AlgResult, compile_loop, simulate_loop
from .report import format_table

__all__ = [
    "PmaxPoint",
    "run_comm_latency_sweep",
    "run_core_sweep",
    "run_granularity_sweep",
    "run_pmax_sweep",
    "run_scheduler_comparison",
]


@dataclass(frozen=True)
class PmaxPoint:
    p_max: float
    tms_ii: float
    tms_cdelay: float
    misspec_frequency: float
    cycles_per_iteration: float


def _selected(benchmarks: list[str] | None):
    for sl in DOACROSS_LOOPS:
        if benchmarks is None or sl.benchmark in benchmarks:
            yield sl


def run_pmax_sweep(p_values: tuple[float, ...] = (0.0, 0.01, 0.05, 0.2, 1.0),
                   arch: ArchConfig | None = None,
                   iterations: int = 500,
                   benchmarks: list[str] | None = None) -> list[PmaxPoint]:
    arch = arch or ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    points: list[PmaxPoint] = []
    loops = list(_selected(benchmarks))
    for p_max in p_values:
        config = SchedulerConfig(p_max=p_max)
        iis, cds, freqs, cpis = [], [], [], []
        for sl in loops:
            compiled = compile_loop(sl.loop, arch, resources, config)
            stats = simulate_loop(compiled.tms, arch, iterations)
            iis.append(compiled.tms.ii)
            cds.append(compiled.tms.c_delay)
            freqs.append(stats.misspec_frequency)
            cpis.append(stats.cycles_per_iteration)
        n = len(loops)
        points.append(PmaxPoint(
            p_max=p_max,
            tms_ii=sum(iis) / n,
            tms_cdelay=sum(cds) / n,
            misspec_frequency=sum(freqs) / n,
            cycles_per_iteration=sum(cpis) / n,
        ))
    return points


def run_comm_latency_sweep(latencies: tuple[int, ...] = (1, 3, 6),
                           iterations: int = 500,
                           benchmarks: list[str] | None = None
                           ) -> list[dict]:
    """TMS quality vs operand-network latency."""
    out: list[dict] = []
    for lat in latencies:
        arch = ArchConfig.paper_default().with_reg_comm_latency(lat)
        resources = ResourceModel.default(arch.issue_width)
        cds, cpis = [], []
        for sl in _selected(benchmarks):
            compiled = compile_loop(sl.loop, arch, resources)
            stats = simulate_loop(compiled.tms, arch, iterations)
            cds.append(compiled.tms.c_delay)
            cpis.append(stats.cycles_per_iteration)
        out.append({
            "reg_comm_latency": lat,
            "avg_c_delay": sum(cds) / len(cds),
            "avg_cycles_per_iteration": sum(cpis) / len(cpis),
        })
    return out


def run_core_sweep(cores: tuple[int, ...] = (2, 4, 8),
                   iterations: int = 500,
                   benchmarks: list[str] | None = None) -> list[dict]:
    """TMS scaling with core count."""
    out: list[dict] = []
    for ncore in cores:
        arch = ArchConfig.paper_default().with_cores(ncore)
        resources = ResourceModel.default(arch.issue_width)
        iis, cds, cpis = [], [], []
        for sl in _selected(benchmarks):
            compiled = compile_loop(sl.loop, arch, resources)
            stats = simulate_loop(compiled.tms, arch, iterations)
            iis.append(compiled.tms.ii)
            cds.append(compiled.tms.c_delay)
            cpis.append(stats.cycles_per_iteration)
        n = len(iis)
        out.append({
            "ncore": ncore,
            "avg_tms_ii": sum(iis) / n,
            "avg_c_delay": sum(cds) / n,
            "avg_cycles_per_iteration": sum(cpis) / n,
        })
    return out


def run_scheduler_comparison(arch: ArchConfig | None = None,
                             iterations: int = 500,
                             benchmarks: list[str] | None = None
                             ) -> list[dict]:
    """SMS vs IMS vs Huff vs TMS kernels executed on the SpMT machine."""
    arch = arch or ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    out: list[dict] = []
    for sl in _selected(benchmarks):
        compiled = compile_loop(sl.loop, arch, resources)
        ims = AlgResult.from_schedule(
            IterativeModuloScheduler(compiled.ddg, resources).schedule(), arch)
        huff = AlgResult.from_schedule(
            HuffModuloScheduler(compiled.ddg, resources).schedule(), arch)
        row = {"loop": sl.loop.name}
        for name, alg in (("sms", compiled.sms), ("ims", ims),
                          ("huff", huff), ("tms", compiled.tms)):
            stats = simulate_loop(alg, arch, iterations)
            row[f"{name}_ii"] = alg.ii
            row[f"{name}_cdelay"] = alg.c_delay
            row[f"{name}_cpi"] = stats.cycles_per_iteration
        out.append(row)
    return out


def run_granularity_sweep(factors: tuple[int, ...] = (1, 2, 4),
                          arch: ArchConfig | None = None,
                          iterations: int = 500,
                          benchmarks: list[str] | None = None
                          ) -> list[dict]:
    """Thread-granularity sweep via loop unrolling (the paper's future
    work): each SpMT thread executes ``factor`` original iterations,
    trading communication frequency against II and speculation
    granularity.  Reported cycles are normalised per *original*
    iteration."""
    from ..ir.unroll import unroll_loop

    arch = arch or ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    out: list[dict] = []
    max_factor = max(factors)
    for factor in factors:
        cpis, iis, pairs = [], [], []
        for sl in _selected(benchmarks):
            if len(sl.loop) * max_factor > 80:
                continue  # keep the sweep tractable: fine-grain loops only
            loop = unroll_loop(sl.loop, factor)
            compiled = compile_loop(loop, arch, resources)
            stats = simulate_loop(compiled.tms, arch,
                                  max(iterations // factor, 64))
            cpis.append(stats.cycles_per_iteration / factor)
            iis.append(compiled.tms.ii)
            pairs.append(compiled.tms.pipelined.comm.pairs_per_iteration
                         / factor)
        n = len(cpis)
        out.append({
            "unroll_factor": factor,
            "avg_tms_ii": sum(iis) / n,
            "avg_cycles_per_orig_iteration": sum(cpis) / n,
            "avg_pairs_per_orig_iteration": sum(pairs) / n,
        })
    return out
