"""Ablations of the design choices DESIGN.md calls out.

* ``run_pmax_sweep`` — the paper's "several values for P_max can be tried":
  how the threshold trades misspeculation frequency against C_delay/II.
* ``run_comm_latency_sweep`` — sensitivity to the scalar-operand-network
  latency (1/3/6-cycle; the paper's machine uses 3).
* ``run_core_sweep`` — 2/4/8 cores: the objective F depends on ncore, so
  TMS picks different (II, C_delay) trade-offs per machine width.
* ``run_scheduler_comparison`` — SMS vs IMS vs Huff vs TMS kernels on the
  SpMT machine (the paper: "our work is not tied to any existing modulo
  scheduling algorithm"; Huff's lifetime-sensitive scheduler is its
  reference [9]).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import ArchConfig, SchedulerConfig
from ..machine.resources import ResourceModel
from ..sched.huff import HuffModuloScheduler
from ..sched.ims import IterativeModuloScheduler
from ..workloads.doacross import DOACROSS_LOOPS
from .pipeline import AlgResult, compile_loop, simulate_loop
from .report import format_table

__all__ = [
    "PmaxPoint",
    "run_comm_latency_sweep",
    "run_core_sweep",
    "run_granularity_sweep",
    "run_pmax_sweep",
    "run_scheduler_comparison",
]


@dataclass(frozen=True)
class PmaxPoint:
    p_max: float
    tms_ii: float
    tms_cdelay: float
    misspec_frequency: float
    cycles_per_iteration: float


def _selected(benchmarks: list[str] | None):
    for sl in DOACROSS_LOOPS:
        if benchmarks is None or sl.benchmark in benchmarks:
            yield sl


def _tms_point(task: tuple) -> tuple[float, float, float, float]:
    """Compile one loop at one sweep point and run its TMS kernel.

    Module-level so the ParallelRunner can ship it to worker processes;
    a sequential run executes it inline through the calling session's
    cache, a parallel worker through its own process session (sharing
    the disk tier when ``REPRO_CACHE_DIR`` is set).
    """
    loop, arch, config, iterations = task
    compiled = compile_loop(loop, arch,
                            ResourceModel.default(arch.issue_width), config)
    stats = simulate_loop(compiled.tms, arch, iterations)
    return (compiled.tms.ii, compiled.tms.c_delay,
            stats.misspec_frequency, stats.cycles_per_iteration)


def _sweep(tasks: list[tuple], jobs: int | None) -> list[tuple]:
    from ..session import ParallelRunner
    results = ParallelRunner(jobs).map(_tms_point, tasks, on_error="raise")
    return [r.value for r in results]


def run_pmax_sweep(p_values: tuple[float, ...] = (0.0, 0.01, 0.05, 0.2, 1.0),
                   arch: ArchConfig | None = None,
                   iterations: int = 500,
                   benchmarks: list[str] | None = None,
                   jobs: int | None = None) -> list[PmaxPoint]:
    arch = arch or ArchConfig.paper_default()
    loops = list(_selected(benchmarks))
    measured = _sweep(
        [(sl.loop, arch, SchedulerConfig(p_max=p_max), iterations)
         for p_max in p_values for sl in loops], jobs)
    points: list[PmaxPoint] = []
    n = len(loops)
    for i, p_max in enumerate(p_values):
        chunk = measured[i * n:(i + 1) * n]
        points.append(PmaxPoint(
            p_max=p_max,
            tms_ii=sum(m[0] for m in chunk) / n,
            tms_cdelay=sum(m[1] for m in chunk) / n,
            misspec_frequency=sum(m[2] for m in chunk) / n,
            cycles_per_iteration=sum(m[3] for m in chunk) / n,
        ))
    return points


def run_comm_latency_sweep(latencies: tuple[int, ...] = (1, 3, 6),
                           iterations: int = 500,
                           benchmarks: list[str] | None = None,
                           jobs: int | None = None) -> list[dict]:
    """TMS quality vs operand-network latency."""
    loops = list(_selected(benchmarks))
    archs = [ArchConfig.paper_default().with_reg_comm_latency(lat)
             for lat in latencies]
    measured = _sweep(
        [(sl.loop, arch, None, iterations)
         for arch in archs for sl in loops], jobs)
    out: list[dict] = []
    n = len(loops)
    for i, lat in enumerate(latencies):
        chunk = measured[i * n:(i + 1) * n]
        out.append({
            "reg_comm_latency": lat,
            "avg_c_delay": sum(m[1] for m in chunk) / n,
            "avg_cycles_per_iteration": sum(m[3] for m in chunk) / n,
        })
    return out


def run_core_sweep(cores: tuple[int, ...] = (2, 4, 8),
                   iterations: int = 500,
                   benchmarks: list[str] | None = None,
                   jobs: int | None = None) -> list[dict]:
    """TMS scaling with core count."""
    loops = list(_selected(benchmarks))
    archs = [ArchConfig.paper_default().with_cores(ncore) for ncore in cores]
    measured = _sweep(
        [(sl.loop, arch, None, iterations)
         for arch in archs for sl in loops], jobs)
    out: list[dict] = []
    n = len(loops)
    for i, ncore in enumerate(cores):
        chunk = measured[i * n:(i + 1) * n]
        out.append({
            "ncore": ncore,
            "avg_tms_ii": sum(m[0] for m in chunk) / n,
            "avg_c_delay": sum(m[1] for m in chunk) / n,
            "avg_cycles_per_iteration": sum(m[3] for m in chunk) / n,
        })
    return out


def run_scheduler_comparison(arch: ArchConfig | None = None,
                             iterations: int = 500,
                             benchmarks: list[str] | None = None
                             ) -> list[dict]:
    """SMS vs IMS vs Huff vs TMS kernels executed on the SpMT machine."""
    arch = arch or ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    out: list[dict] = []
    for sl in _selected(benchmarks):
        compiled = compile_loop(sl.loop, arch, resources)
        ims = AlgResult.from_schedule(
            IterativeModuloScheduler(compiled.ddg, resources).schedule(), arch)
        huff = AlgResult.from_schedule(
            HuffModuloScheduler(compiled.ddg, resources).schedule(), arch)
        row = {"loop": sl.loop.name}
        for name, alg in (("sms", compiled.sms), ("ims", ims),
                          ("huff", huff), ("tms", compiled.tms)):
            stats = simulate_loop(alg, arch, iterations)
            row[f"{name}_ii"] = alg.ii
            row[f"{name}_cdelay"] = alg.c_delay
            row[f"{name}_cpi"] = stats.cycles_per_iteration
        out.append(row)
    return out


def run_granularity_sweep(factors: tuple[int, ...] = (1, 2, 4),
                          arch: ArchConfig | None = None,
                          iterations: int = 500,
                          benchmarks: list[str] | None = None
                          ) -> list[dict]:
    """Thread-granularity sweep via loop unrolling (the paper's future
    work): each SpMT thread executes ``factor`` original iterations,
    trading communication frequency against II and speculation
    granularity.  Reported cycles are normalised per *original*
    iteration."""
    from ..ir.unroll import unroll_loop

    arch = arch or ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    out: list[dict] = []
    max_factor = max(factors)
    for factor in factors:
        cpis, iis, pairs = [], [], []
        for sl in _selected(benchmarks):
            if len(sl.loop) * max_factor > 80:
                continue  # keep the sweep tractable: fine-grain loops only
            loop = unroll_loop(sl.loop, factor)
            compiled = compile_loop(loop, arch, resources)
            stats = simulate_loop(compiled.tms, arch,
                                  max(iterations // factor, 64))
            cpis.append(stats.cycles_per_iteration / factor)
            iis.append(compiled.tms.ii)
            pairs.append(compiled.tms.pipelined.comm.pairs_per_iteration
                         / factor)
        n = len(cpis)
        out.append({
            "unroll_factor": factor,
            "avg_tms_ii": sum(iis) / n,
            "avg_cycles_per_orig_iteration": sum(cpis) / n,
            "avg_pairs_per_orig_iteration": sum(pairs) / n,
        })
    return out
