"""Figure 4: speedups of TMS over SMS on the quad-core SpMT machine.

Both algorithms' kernels are simulated per loop; per-benchmark loop speedup
is the coverage-weighted mean over its loop population, and the program
speedup composes through Amdahl's law with the benchmark's loop coverage.

Expected shape: good loop speedups everywhere except wupwise (~0, its
dominant loop is a single big SCC where TMS trades ILP one-for-one for
TLP); art the largest (paper: 83%); averages around 28% loop / 10% program.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ArchConfig, SchedulerConfig
from ..workloads.specfp import benchmark_by_name, loop_weights
from .report import format_table, pct
from .table2 import Table2Row, run_table2

__all__ = ["Fig4Row", "run_fig4", "render_fig4"]


@dataclass(frozen=True)
class Fig4Row:
    """One benchmark's simulated speedups."""

    benchmark: str
    loop_speedup: float       # weighted mean of per-loop speedups (1.0 = parity)
    program_speedup: float    # Amdahl composition with loop coverage
    per_loop: tuple[float, ...] = ()


def amdahl(coverage: float, loop_speedup: float) -> float:
    """Whole-program speedup when ``coverage`` of time speeds up by
    ``loop_speedup``."""
    if loop_speedup <= 0:
        return 1.0
    return 1.0 / ((1.0 - coverage) + coverage / loop_speedup)


def run_fig4(arch: ArchConfig | None = None,
             config: SchedulerConfig | None = None,
             max_loops: int | None = None,
             iterations: int = 300,
             benchmarks: list[str] | None = None,
             table2_rows: list[Table2Row] | None = None,
             session=None, jobs: int | None = None) -> list[Fig4Row]:
    """Simulate SMS and TMS kernels and compute speedups.

    Reuses ``table2_rows`` (with compiled loops kept) when provided, so the
    suite is only compiled once per session.  Simulations fan out over
    ``jobs`` processes (deterministic: results are ordered by loop).
    """
    from ..session import get_session
    arch = arch or ArchConfig.paper_default()
    session = session or get_session()
    if table2_rows is None:
        table2_rows = run_table2(arch, config, max_loops=max_loops,
                                 benchmarks=benchmarks, keep_compiled=True,
                                 session=session, jobs=jobs)
    out: list[Fig4Row] = []
    for row in table2_rows:
        spec = benchmark_by_name(row.benchmark)
        weights = loop_weights(spec, len(row.compiled))
        kernels = [alg for compiled in row.compiled
                   for alg in (compiled.sms, compiled.tms)]
        stats = session.simulate_many(kernels, arch, iterations, jobs=jobs)
        speedups: list[float] = []
        weighted = 0.0
        for i, (compiled, w) in enumerate(zip(row.compiled, weights)):
            sms_stats, tms_stats = stats[2 * i], stats[2 * i + 1]
            s = (sms_stats.total_cycles / tms_stats.total_cycles
                 if tms_stats.total_cycles else 1.0)
            speedups.append(s)
            weighted += w * s
        out.append(Fig4Row(
            benchmark=row.benchmark,
            loop_speedup=weighted,
            program_speedup=amdahl(spec.coverage, weighted),
            per_loop=tuple(speedups),
        ))
    return out


def render_fig4(rows: list[Fig4Row]) -> str:
    table_rows = [
        [r.benchmark, pct(r.loop_speedup - 1.0), pct(r.program_speedup - 1.0)]
        for r in rows
    ]
    if rows:
        avg_loop = sum(r.loop_speedup for r in rows) / len(rows)
        avg_prog = sum(r.program_speedup for r in rows) / len(rows)
        table_rows.append(["AVERAGE", pct(avg_loop - 1.0), pct(avg_prog - 1.0)])
        table_rows.append(["(paper avg)", "+28.0%", "+10.0%"])
    return format_table(
        ["Benchmark", "Loop speedup", "Program speedup"],
        table_rows,
        title="Figure 4. Speedups of TMS over SMS (quad-core SpMT).")
