"""``tms-experiments compile`` — run the full compiler flow on a user loop.

Takes a DSL file (see :mod:`repro.ir.dsl`), profiles it, builds the DDG,
schedules with SMS and TMS, prints the schedules / thread program /
simulated performance, and optionally dumps everything as JSON.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from ..config import ArchConfig, SchedulerConfig, SimConfig
from ..costmodel import achieved_c_delay, estimate_execution_time
from ..graph import build_ddg
from ..ir import parse_loop, unroll_loop
from ..machine import LatencyModel, ResourceModel
from ..sched import (
    allocate_registers,
    generate_thread_program,
    run_postpass,
    schedule_sms,
    schedule_tms,
)
from ..spmt import simulate, simulate_sequential
from ..workloads import profile_memory_dependences

__all__ = ["compile_report", "run_compile_command"]


def compile_report(source: str, *, arch: ArchConfig | None = None,
                   config: SchedulerConfig | None = None,
                   iterations: int = 1000,
                   unroll: int = 1,
                   profile_iterations: int = 512) -> dict:
    """Compile DSL ``source`` end to end; return a JSON-able report."""
    arch = arch or ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    latency = LatencyModel.for_arch(arch)

    loop = parse_loop(source)
    if unroll > 1:
        loop = unroll_loop(loop, unroll)
    probs = profile_memory_dependences(loop, iterations=profile_iterations)
    ddg = build_ddg(loop, latency, probabilities=probs,
                    default_irregular_probability=0.002)

    report: dict = {
        "loop": loop.name,
        "instructions": len(loop),
        "profiled_dependences": [
            {"producer": p, "consumer": c, "distance": d, "probability": prob}
            for (p, c, d), prob in sorted(probs.items())
        ],
        "algorithms": {},
    }
    seq = simulate_sequential(ddg, resources, iterations)
    report["single_threaded_cycles_per_iteration"] = \
        seq.total_cycles / iterations

    for name, sched in (("sms", schedule_sms(ddg, resources, config)),
                        ("tms", schedule_tms(ddg, resources, arch, config))):
        pipelined = run_postpass(sched, arch)
        stats = simulate(pipelined, arch, SimConfig(iterations=iterations))
        alloc = allocate_registers(sched)
        est = estimate_execution_time(sched, arch, iterations)
        report["algorithms"][name] = {
            "ii": sched.ii,
            "stages": sched.num_stages,
            "c_delay": achieved_c_delay(sched, arch),
            "max_live": alloc.n_registers,
            "registers": alloc.n_registers,
            "send_recv_pairs_per_iteration":
                pipelined.comm.pairs_per_iteration,
            "copies": pipelined.comm.copies,
            "modelled_cycles_per_iteration": est.per_iteration,
            "simulated_cycles_per_iteration": stats.cycles_per_iteration,
            "sync_stall_cycles_per_iteration":
                stats.sync_stall_cycles / iterations,
            "misspec_frequency": stats.misspec_frequency,
            "speedup_vs_single_threaded":
                seq.total_cycles / stats.total_cycles,
            "thread_program": generate_thread_program(pipelined).listing(),
        }
    tms = report["algorithms"]["tms"]
    sms = report["algorithms"]["sms"]
    report["tms_speedup_over_sms"] = (
        sms["simulated_cycles_per_iteration"]
        / tms["simulated_cycles_per_iteration"]
        if tms["simulated_cycles_per_iteration"] else 1.0)
    return report


def render_compile_report(report: dict, *, show_program: bool = True) -> str:
    lines = [f"loop {report['loop']}: {report['instructions']} instructions"]
    if report["profiled_dependences"]:
        lines.append("profiled memory dependences:")
        for dep in report["profiled_dependences"]:
            lines.append(
                f"  {dep['producer']} -> {dep['consumer']} "
                f"@d{dep['distance']}: p={dep['probability']:.4f}")
    lines.append(
        f"single-threaded: "
        f"{report['single_threaded_cycles_per_iteration']:.2f} cyc/iter")
    for name in ("sms", "tms"):
        a = report["algorithms"][name]
        lines.append(
            f"{name.upper()}: II={a['ii']} stages={a['stages']} "
            f"C_delay={a['c_delay']:.1f} regs={a['registers']} "
            f"pairs/iter={a['send_recv_pairs_per_iteration']} | "
            f"{a['simulated_cycles_per_iteration']:.2f} cyc/iter, "
            f"misspec {100 * a['misspec_frequency']:.3f}%, "
            f"{a['speedup_vs_single_threaded']:.2f}x vs single-threaded")
    lines.append(f"TMS speedup over SMS: "
                 f"{report['tms_speedup_over_sms']:.2f}x")
    if show_program:
        lines.append("")
        lines.append(report["algorithms"]["tms"]["thread_program"])
    return "\n".join(lines)


def run_compile_command(path: str, *, cores: int = 4, iterations: int = 1000,
                        unroll: int = 1, json_out: str | None = None) -> int:
    source = Path(path).read_text()
    arch = ArchConfig.paper_default().with_cores(cores)
    report = compile_report(source, arch=arch, iterations=iterations,
                            unroll=unroll)
    print(render_compile_report(report))
    if json_out:
        Path(json_out).write_text(json.dumps(report, indent=2))
        print(f"\n[json report written to {json_out}]")
    return 0
