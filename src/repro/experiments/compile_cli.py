"""``tms-experiments compile`` — run the full compiler flow on a user loop.

Takes a DSL file (see :mod:`repro.ir.dsl`), profiles it, builds the DDG,
schedules with the requested policies (``--policy``, default SMS and
TMS), prints the schedules / thread program / simulated performance, and
optionally dumps everything as JSON.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..config import KNOWN_POLICIES, ArchConfig, SchedulerConfig, SimConfig
from ..costmodel import achieved_c_delay, estimate_execution_time
from ..errors import MachineError
from ..graph import build_ddg
from ..ir import parse_loop, unroll_loop
from ..machine import LatencyModel, ResourceModel
from ..sched import (
    allocate_registers,
    generate_thread_program,
    run_postpass,
    schedule_with_policy,
)
from ..spmt import simulate, simulate_sequential
from ..workloads import profile_memory_dependences

__all__ = ["compile_report", "parse_policies", "run_compile_command"]

#: policies ``compile`` runs when ``--policy`` is not given.
DEFAULT_POLICIES: tuple[str, ...] = ("sms", "tms")


def parse_policies(spec: str) -> tuple[str, ...]:
    """Parse a comma-separated ``--policy`` value against
    :data:`KNOWN_POLICIES` (order- and duplicate-preserving)."""
    names = tuple(p.strip().lower() for p in spec.split(",") if p.strip())
    if not names:
        raise MachineError("--policy needs at least one policy name")
    for name in names:
        if name not in KNOWN_POLICIES:
            raise MachineError(
                f"unknown policy {name!r}; choose from "
                f"{', '.join(KNOWN_POLICIES)}")
    return names


def compile_report(source: str, *, arch: ArchConfig | None = None,
                   config: SchedulerConfig | None = None,
                   iterations: int = 1000,
                   unroll: int = 1,
                   profile_iterations: int = 512,
                   policies: tuple[str, ...] = DEFAULT_POLICIES) -> dict:
    """Compile DSL ``source`` end to end; return a JSON-able report.

    ``policies`` names the schedulers to run (see
    :data:`~repro.config.KNOWN_POLICIES`); each gets an
    ``report["algorithms"]`` entry.  When both SMS and TMS run, the
    headline ``tms_speedup_over_sms`` ratio is included.
    """
    arch = arch or ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    latency = LatencyModel.for_arch(arch)

    loop = parse_loop(source)
    if unroll > 1:
        loop = unroll_loop(loop, unroll)
    probs = profile_memory_dependences(loop, iterations=profile_iterations)
    ddg = build_ddg(loop, latency, probabilities=probs,
                    default_irregular_probability=0.002)

    report: dict = {
        "loop": loop.name,
        "instructions": len(loop),
        "policies": list(policies),
        "profiled_dependences": [
            {"producer": p, "consumer": c, "distance": d, "probability": prob}
            for (p, c, d), prob in sorted(probs.items())
        ],
        "algorithms": {},
    }
    seq = simulate_sequential(ddg, resources, iterations)
    report["single_threaded_cycles_per_iteration"] = \
        seq.total_cycles / iterations

    for name in policies:
        sched = schedule_with_policy(ddg, resources, arch, name, config)
        pipelined = run_postpass(sched, arch)
        stats = simulate(pipelined, arch, SimConfig(iterations=iterations))
        alloc = allocate_registers(sched)
        est = estimate_execution_time(sched, arch, iterations)
        report["algorithms"][name] = {
            "ii": sched.ii,
            "stages": sched.num_stages,
            "c_delay": achieved_c_delay(sched, arch),
            "max_live": alloc.n_registers,
            "registers": alloc.n_registers,
            "send_recv_pairs_per_iteration":
                pipelined.comm.pairs_per_iteration,
            "copies": pipelined.comm.copies,
            "modelled_cycles_per_iteration": est.per_iteration,
            "simulated_cycles_per_iteration": stats.cycles_per_iteration,
            "sync_stall_cycles_per_iteration":
                stats.sync_stall_cycles / iterations,
            "misspec_frequency": stats.misspec_frequency,
            "speedup_vs_single_threaded":
                seq.total_cycles / stats.total_cycles,
            "thread_program": generate_thread_program(pipelined).listing(),
        }
    if "sms" in report["algorithms"] and "tms" in report["algorithms"]:
        tms = report["algorithms"]["tms"]
        sms = report["algorithms"]["sms"]
        report["tms_speedup_over_sms"] = (
            sms["simulated_cycles_per_iteration"]
            / tms["simulated_cycles_per_iteration"]
            if tms["simulated_cycles_per_iteration"] else 1.0)
    return report


def render_compile_report(report: dict, *, show_program: bool = True) -> str:
    lines = [f"loop {report['loop']}: {report['instructions']} instructions"]
    if report["profiled_dependences"]:
        lines.append("profiled memory dependences:")
        for dep in report["profiled_dependences"]:
            lines.append(
                f"  {dep['producer']} -> {dep['consumer']} "
                f"@d{dep['distance']}: p={dep['probability']:.4f}")
    lines.append(
        f"single-threaded: "
        f"{report['single_threaded_cycles_per_iteration']:.2f} cyc/iter")
    for name, a in report["algorithms"].items():
        lines.append(
            f"{name.upper()}: II={a['ii']} stages={a['stages']} "
            f"C_delay={a['c_delay']:.1f} regs={a['registers']} "
            f"pairs/iter={a['send_recv_pairs_per_iteration']} | "
            f"{a['simulated_cycles_per_iteration']:.2f} cyc/iter, "
            f"misspec {100 * a['misspec_frequency']:.3f}%, "
            f"{a['speedup_vs_single_threaded']:.2f}x vs single-threaded")
    if "tms_speedup_over_sms" in report:
        lines.append(f"TMS speedup over SMS: "
                     f"{report['tms_speedup_over_sms']:.2f}x")
    if show_program:
        # the most capable policy's thread program (they are listed in
        # --policy order; prefer tms when present)
        algs = report["algorithms"]
        best = "tms" if "tms" in algs else next(reversed(algs), None)
        if best is not None:
            lines.append("")
            lines.append(algs[best]["thread_program"])
    return "\n".join(lines)


def run_compile_command(path: str, *, cores: int = 4, iterations: int = 1000,
                        unroll: int = 1, json_out: str | None = None,
                        policy: str | None = None) -> int:
    source = Path(path).read_text()
    arch = ArchConfig.paper_default().with_cores(cores)
    policies = parse_policies(policy) if policy else DEFAULT_POLICIES
    report = compile_report(source, arch=arch, iterations=iterations,
                            unroll=unroll, policies=policies)
    print(render_compile_report(report))
    if json_out:
        Path(json_out).write_text(json.dumps(report, indent=2))
        print(f"\n[json report written to {json_out}]")
    return 0
