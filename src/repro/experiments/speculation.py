"""Section 5.2's speculation ablation.

Recompile the Table-3 loops with speculation disabled — every inter-thread
memory dependence must be synchronised (joins C1, gets SEND/RECV channels,
never misspeculates) — and compare the TMS speedups over single-threaded
code with and without speculation.

Paper: "the performance gain for the loop (program) would be reduced by
19.0% for equake and 21.4% for fma3d otherwise", and the misspeculation
frequency with speculation on stays below 0.1%.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import ArchConfig, SchedulerConfig
from ..machine.resources import ResourceModel
from ..spmt.single import simulate_sequential
from ..workloads.doacross import DOACROSS_LOOPS
from .pipeline import compile_loop, simulate_loop
from .report import format_table, pct

__all__ = ["SpeculationRow", "run_speculation", "render_speculation"]


@dataclass(frozen=True)
class SpeculationRow:
    """One loop's with/without-speculation comparison."""

    loop: str
    benchmark: str
    speedup_with_spec: float
    speedup_without_spec: float
    misspec_frequency: float

    @property
    def gain_reduction(self) -> float:
        """Fraction of the speculative *gain* lost when speculation is
        disabled (the paper's 19.0% / 21.4% metric)."""
        gain_with = self.speedup_with_spec - 1.0
        gain_without = self.speedup_without_spec - 1.0
        if gain_with <= 0:
            return 0.0
        return max(0.0, (gain_with - gain_without) / gain_with)


def _speculation_row(task: tuple) -> SpeculationRow:
    """One loop's with/without-speculation comparison (module-level so
    the ParallelRunner can fan rows out across processes)."""
    sl, arch, config, no_spec, iterations = task
    resources = ResourceModel.default(arch.issue_width)
    with_spec = compile_loop(sl.loop, arch, resources, config)
    without_spec = compile_loop(sl.loop, arch, resources, no_spec)
    single = simulate_sequential(with_spec.ddg, resources, iterations)
    tms_on = simulate_loop(with_spec.tms, arch, iterations)
    tms_off = simulate_loop(without_spec.tms, arch, iterations)
    return SpeculationRow(
        loop=sl.loop.name,
        benchmark=sl.benchmark,
        speedup_with_spec=single.total_cycles / tms_on.total_cycles,
        speedup_without_spec=single.total_cycles / tms_off.total_cycles,
        misspec_frequency=tms_on.misspec_frequency,
    )


def run_speculation(arch: ArchConfig | None = None,
                    config: SchedulerConfig | None = None,
                    iterations: int = 1000,
                    benchmarks: list[str] | None = None,
                    jobs: int | None = None) -> list[SpeculationRow]:
    from ..session import ParallelRunner
    arch = arch or ArchConfig.paper_default()
    config = config or SchedulerConfig()
    no_spec = replace(config, speculation=False)
    tasks = [(sl, arch, config, no_spec, iterations)
             for sl in DOACROSS_LOOPS
             if benchmarks is None or sl.benchmark in benchmarks]
    results = ParallelRunner(jobs).map(_speculation_row, tasks,
                                       on_error="raise")
    return [r.value for r in results]


def render_speculation(rows: list[SpeculationRow]) -> str:
    table_rows = [
        [r.loop, r.benchmark,
         pct(r.speedup_with_spec - 1.0), pct(r.speedup_without_spec - 1.0),
         pct(-r.gain_reduction), f"{100 * r.misspec_frequency:.3f}%"]
        for r in rows
    ]
    return format_table(
        ["Loop", "Benchmark", "speedup (spec on)", "speedup (spec off)",
         "gain delta", "misspec freq"],
        table_rows,
        title="Section 5.2 ablation: data speculation on vs off "
              "(paper: equake loses 19.0% of its gain, fma3d 21.4%; "
              "misspec freq < 0.1%).")
