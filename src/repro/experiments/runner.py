"""Command-line entry point: ``python -m repro.experiments`` /
``tms-experiments``.

Regenerates any (or all) of the paper's tables and figures:

    tms-experiments table1
    tms-experiments table2 --max-loops 5
    tms-experiments fig4 --max-loops 5 --iterations 300
    tms-experiments table3 fig5 fig6 speculation
    tms-experiments all --quick
    tms-experiments all --quick --jobs 4      # parallel fan-out
    tms-experiments all --quick --stats       # cache/metrics dump on stderr
    tms-experiments table2 --trace out/run    # JSONL + Chrome trace export
    tms-experiments validate --quick          # cost model vs simulator
    tms-experiments dse --preset paper-cores  # design-space sweep

Everything routes through the process :class:`repro.session.Session`;
set ``REPRO_CACHE_DIR`` to persist compiled artifacts across runs (a
warm rerun recompiles nothing — the session report printed on stderr
shows the hit/miss counters) and ``REPRO_JOBS`` to default ``--jobs``.

``--stats`` dumps the session-cache counters and the full metrics
registry (:mod:`repro.obs.metrics`) to stderr.  ``--trace PREFIX``
enables structured event tracing (:mod:`repro.obs.events`) and writes
``PREFIX.jsonl`` (the event log) plus ``PREFIX.trace.json`` (Chrome
``chrome://tracing`` format) — deterministic for a given seed.  The
``validate`` subcommand compares the Section 4.2 cost model against the
simulator per kernel and reports aggregate MAPE
(:mod:`repro.experiments.validate`).  The ``dse`` subcommand runs a
design-space sweep (:mod:`repro.dse`): a preset or TOML/JSON space,
grid/random/adaptive search, checkpointed to JSONL (``--resume``) and
reported as versioned JSON + markdown with a Pareto frontier — see
``docs/dse.md``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..config import ArchConfig, SchedulerConfig
from .ablation import run_comm_latency_sweep, run_core_sweep, run_pmax_sweep
from .fig4 import render_fig4, run_fig4
from .fig5 import render_fig5, run_fig5
from .fig6 import render_fig6, run_fig6
from .report import format_table
from .speculation import render_speculation, run_speculation
from .table1 import table1
from .table2 import render_table2, run_table2
from .table3 import render_table3, run_table3

__all__ = ["main"]

_EXPERIMENTS = ("table1", "table2", "table3", "fig4", "fig5", "fig6",
                "speculation", "ablation")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tms-experiments",
        description="Regenerate the paper's tables/figures, or compile a "
                    "loop of your own.")
    sub = parser.add_subparsers(dest="command")
    comp = sub.add_parser(
        "compile", help="compile a DSL loop file with SMS and TMS and "
                        "report schedules + simulated performance")
    comp.add_argument("path", help="loop source file (repro.ir.dsl syntax)")
    comp.add_argument("--cores", type=int, default=4)
    comp.add_argument("--iterations", type=int, default=1000)
    comp.add_argument("--unroll", type=int, default=1,
                      help="unroll factor (thread granularity)")
    comp.add_argument("--json", dest="json_out", default=None,
                      help="also write the full report as JSON")
    comp.add_argument("--policy", default=None,
                      help="comma-separated scheduling policies to run "
                           "(tms, sms, ims, seq; default: sms,tms)")
    val = sub.add_parser(
        "validate", help="compare the Section 4.2 cost model against the "
                         "simulator per kernel and report aggregate MAPE")
    val.add_argument("--suite", choices=("table2", "table3", "both"),
                     default="table2",
                     help="kernel suite(s) to validate (default: table2)")
    val.add_argument("--max-loops", type=int, default=None)
    val.add_argument("--iterations", type=int, default=None)
    val.add_argument("--quick", action="store_true",
                     help="small populations and short runs")
    val.add_argument("--cores", type=int, default=4)
    val.add_argument("--seed", type=int, default=0xACE5)
    val.add_argument("--jobs", type=int, default=None)
    val.add_argument("--out", default=None,
                     help="also write the report as JSON (stable schema)")
    _add_obs_flags(val)
    dse = sub.add_parser(
        "dse", help="design-space sweep: grid/random/adaptive search over "
                    "arch/scheduler/workload parameters with Pareto "
                    "reporting and resumable checkpoints")
    from ..dse.cli import add_dse_arguments
    add_dse_arguments(dse)
    _add_obs_flags(dse)
    chaos = sub.add_parser(
        "chaos", help="seeded fault-injection campaign: squash storms, "
                      "operand-network jitter/loss, flaky spawns — every "
                      "run checked against the trace invariant sanitizer")
    from ..faults.cli import add_chaos_arguments
    add_chaos_arguments(chaos)
    _add_obs_flags(chaos)
    rep = sub.add_parser(
        "report", help="render the run ledger (REPRO_LEDGER_DIR) and the "
                       "benchmarks/baselines trajectory as markdown / an "
                       "HTML dashboard; --check gates on perf regressions")
    from .report_cli import add_report_arguments
    add_report_arguments(rep)
    from ..serve.cli import (add_chaos_serve_arguments, add_serve_arguments,
                             add_submit_arguments)
    serve = sub.add_parser(
        "serve", help="run the long-lived compile/simulate daemon: warm "
                      "worker pool, request coalescing, bounded admission "
                      "control; --supervise adds crash/hang restarts "
                      "(docs/serving.md)")
    add_serve_arguments(serve)
    _add_obs_flags(serve)
    submit = sub.add_parser(
        "submit", help="send one compile/simulate request to a running "
                       "serve daemon and print the result")
    add_submit_arguments(submit)
    chaos_serve = sub.add_parser(
        "chaos-serve", help="seeded chaos campaign against the serve "
                            "stack: SIGKILL mid-burst, connection resets, "
                            "injected latency, worker-pool breakage — "
                            "asserts zero wrong answers and bounded "
                            "unavailability")
    add_chaos_serve_arguments(chaos_serve)
    _add_obs_flags(chaos_serve)
    return parser


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--stats", action="store_true",
                        help="dump session-cache counters and the metrics "
                             "registry to stderr at exit")
    parser.add_argument("--trace", metavar="PREFIX", default=None,
                        help="enable event tracing; write PREFIX.jsonl and "
                             "PREFIX.trace.json (Chrome trace format)")


def _begin_trace(prefix: str | None) -> None:
    if prefix:
        from ..obs import enable_spans, enable_tracing
        enable_tracing(True).clear()
        # --trace also turns on detail-level spans (per placement
        # attempt, per simulator thread loop); PREFIX.spans.json gets
        # the full tree.
        tracer = enable_spans(True, detail=True)
        tracer.clear()


def _finish_trace(prefix: str | None) -> None:
    """Write the collected events (JSONL + Chrome trace) and spans, and
    print the per-lane event summary."""
    if not prefix:
        return
    import json

    from ..obs import (enable_spans, enable_tracing, format_trace,
                       get_span_tracer, get_tracer, span_tree,
                       spans_to_dicts, write_chrome_trace,
                       write_events_jsonl)
    tracer = get_tracer()
    enable_tracing(False)
    parent = Path(prefix).parent
    if parent and not parent.exists():
        parent.mkdir(parents=True, exist_ok=True)
    jsonl = f"{prefix}.jsonl"
    chrome = f"{prefix}.trace.json"
    write_events_jsonl(tracer.events, jsonl)
    write_chrome_trace(tracer.events, chrome)
    span_tracer = get_span_tracer()
    enable_spans(False, detail=False)
    spans_path = f"{prefix}.spans.json"
    with open(spans_path, "w", encoding="utf-8") as fh:
        json.dump({"spans": spans_to_dicts(span_tracer.spans),
                   "tree": span_tree(span_tracer.spans, normalize=False),
                   "rollup": span_tracer.rollup()},
                  fh, separators=(",", ":"))
        fh.write("\n")
    summary = format_trace(tracer.events)
    if summary:
        print(summary, file=sys.stderr)
    print(f"[trace: {len(tracer.events)} events -> {jsonl}, {chrome}; "
          f"{len(span_tracer.spans)} spans -> {spans_path}]",
          file=sys.stderr)


def _print_stats() -> None:
    """Session-cache counters plus the full metrics registry, on stderr."""
    from ..obs import get_registry
    from ..session import get_session
    session = get_session()
    print(f"[cache: {session.cache.stats.summary()}]", file=sys.stderr)
    rendered = get_registry().render()
    if rendered:
        print("[metrics]", file=sys.stderr)
        print(rendered, file=sys.stderr)


def _run_validate_command(ns: argparse.Namespace) -> int:
    from .validate import run_validate, write_report_json
    suites = ("table2", "table3") if ns.suite == "both" else (ns.suite,)
    max_loops = ns.max_loops if ns.max_loops is not None \
        else (2 if ns.quick else None)
    iterations = ns.iterations if ns.iterations is not None \
        else (200 if ns.quick else 1000)
    arch = ArchConfig.paper_default().with_cores(ns.cores)
    _begin_trace(ns.trace)
    start = time.time()
    report = run_validate(arch, SchedulerConfig(), suites=suites,
                          max_loops=max_loops, iterations=iterations,
                          seed=ns.seed, jobs=ns.jobs)
    print(report.render())
    if ns.out:
        write_report_json(report, ns.out)
        print(f"[report -> {ns.out}]", file=sys.stderr)
    print(f"[validate: {time.time() - start:.1f}s]", file=sys.stderr)
    _finish_trace(ns.trace)
    if ns.stats:
        _print_stats()
    from ..session import get_session
    print(f"[{get_session().report()}]", file=sys.stderr)
    return 0


def _run_dse_command(ns: argparse.Namespace) -> int:
    from ..dse.cli import run_dse_command
    _begin_trace(ns.trace)
    code = run_dse_command(ns)
    _finish_trace(ns.trace)
    if ns.stats:
        _print_stats()
    from ..session import get_session
    print(f"[{get_session().report()}]", file=sys.stderr)
    return code


#: the last serve run's request tally, surfaced into its ledger record
_ledger_extra: dict | None = None


def _run_serve_command(ns: argparse.Namespace) -> int:
    global _ledger_extra
    from ..serve.cli import run_serve_command
    _begin_trace(ns.trace)
    code = run_serve_command(ns)
    _finish_trace(ns.trace)
    if ns.stats:
        _print_stats()
    # the daemon runs its own session (warm pool), so the broker summary
    # printed by run_serve_command stands in for the session report here.
    _ledger_extra = getattr(ns, "serve_summary", None)
    return code


def _run_chaos_command(ns: argparse.Namespace) -> int:
    from ..faults.cli import run_chaos_command
    _begin_trace(ns.trace)
    code = run_chaos_command(ns)
    _finish_trace(ns.trace)
    if ns.stats:
        _print_stats()
    from ..session import get_session
    print(f"[{get_session().report()}]", file=sys.stderr)
    return code


def _run_chaos_serve_command(ns: argparse.Namespace) -> int:
    global _ledger_extra
    from ..serve.cli import run_chaos_serve_command
    _begin_trace(ns.trace)
    code = run_chaos_serve_command(ns)
    _finish_trace(ns.trace)
    if ns.stats:
        _print_stats()
    _ledger_extra = getattr(ns, "serve_summary", None)
    return code


def main(argv: list[str] | None = None) -> int:
    args_list = list(argv) if argv is not None else None
    import sys as _sys
    raw = args_list if args_list is not None else _sys.argv[1:]
    if raw and raw[0] == "report":
        # reading the ledger must not append to it
        from .report_cli import run_report_command
        return run_report_command(_build_parser().parse_args(raw))
    from ..obs.ledger import append_run_record, ledger_dir
    ledgered = ledger_dir() is not None
    if ledgered:
        # coarse spans only: the ledger records the roll-up, so
        # per-attempt detail spans would be pure memory overhead here.
        from ..obs import enable_spans
        enable_spans(True)
    command = raw[0] if raw and raw[0] in (
        "compile", "validate", "dse", "chaos", "chaos-serve", "serve",
        "submit") else "suite"
    start = time.perf_counter()
    code = _dispatch(command, raw)
    if ledgered:
        append_run_record(command, raw, exit_code=code,
                          duration_seconds=time.perf_counter() - start,
                          extra=_ledger_extra)
    return code


def _dispatch(command: str, raw: list[str]) -> int:
    if command == "compile":
        from .compile_cli import run_compile_command
        ns = _build_parser().parse_args(raw)
        return run_compile_command(ns.path, cores=ns.cores,
                                   iterations=ns.iterations,
                                   unroll=ns.unroll, json_out=ns.json_out,
                                   policy=ns.policy)
    if command == "validate":
        return _run_validate_command(_build_parser().parse_args(raw))
    if command == "dse":
        return _run_dse_command(_build_parser().parse_args(raw))
    if command == "chaos":
        return _run_chaos_command(_build_parser().parse_args(raw))
    if command == "chaos-serve":
        return _run_chaos_serve_command(_build_parser().parse_args(raw))
    if command == "serve":
        return _run_serve_command(_build_parser().parse_args(raw))
    if command == "submit":
        from ..serve.cli import run_submit_command
        return run_submit_command(_build_parser().parse_args(raw))
    return _run_suite_command(raw)


def _run_suite_command(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="tms-experiments",
        description="Regenerate the paper's tables and figures "
                    "(or 'compile <file>' for a loop of your own).")
    parser.add_argument("experiments", nargs="+",
                        choices=_EXPERIMENTS + ("all",),
                        help="which tables/figures to run")
    parser.add_argument("--max-loops", type=int, default=None,
                        help="cap each benchmark's loop population (suite "
                             "experiments)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="simulated trip count per loop")
    parser.add_argument("--quick", action="store_true",
                        help="small populations and short runs")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for compiles/simulations "
                             "(default: $REPRO_JOBS or sequential; "
                             "-1 = all cores)")
    parser.add_argument("--seed", type=int, default=None,
                        help="perturb the synthetic workload populations "
                             "(reproducible; default: the calibrated "
                             "Table-2 populations)")
    _add_obs_flags(parser)
    args = parser.parse_args(argv)

    wanted = list(_EXPERIMENTS) if "all" in args.experiments \
        else args.experiments
    max_loops = args.max_loops if args.max_loops is not None \
        else (4 if args.quick else None)
    iterations = args.iterations if args.iterations is not None \
        else (200 if args.quick else 1000)
    suite_iterations = min(iterations, 300)

    arch = ArchConfig.paper_default().with_cores(args.cores)
    config = SchedulerConfig()
    jobs = args.jobs
    _begin_trace(args.trace)

    table2_rows = None
    table3_rows = None
    for name in wanted:
        start = time.time()
        if name == "table1":
            print(table1(arch))
        elif name == "table2":
            table2_rows = run_table2(arch, config, max_loops=max_loops,
                                     jobs=jobs, workload_seed=args.seed)
            print(render_table2(table2_rows))
        elif name == "fig4":
            if table2_rows is None:
                table2_rows = run_table2(arch, config, max_loops=max_loops,
                                         jobs=jobs,
                                         workload_seed=args.seed)
            print(render_fig4(run_fig4(arch, config,
                                       iterations=suite_iterations,
                                       table2_rows=table2_rows, jobs=jobs)))
        elif name == "table3":
            table3_rows = run_table3(arch, config, jobs=jobs)
            print(render_table3(table3_rows))
        elif name == "fig5":
            if table3_rows is None:
                table3_rows = run_table3(arch, config, jobs=jobs)
            print(render_fig5(run_fig5(arch, config, iterations=iterations,
                                       table3_rows=table3_rows, jobs=jobs)))
        elif name == "fig6":
            if table3_rows is None:
                table3_rows = run_table3(arch, config, jobs=jobs)
            print(render_fig6(run_fig6(arch, config, iterations=iterations,
                                       table3_rows=table3_rows, jobs=jobs)))
        elif name == "speculation":
            print(render_speculation(run_speculation(
                arch, config, iterations=iterations, jobs=jobs)))
        elif name == "ablation":
            _print_ablation(iterations, jobs)
        print(f"[{name}: {time.time() - start:.1f}s]\n", file=sys.stderr)
    _finish_trace(args.trace)
    if args.stats:
        _print_stats()
    from ..session import get_session
    print(f"[{get_session().report()}]", file=sys.stderr)
    return 0


def _print_ablation(iterations: int, jobs: int | None = None) -> None:
    from .ablation import run_granularity_sweep
    from .nest import render_nest_crossover, run_nest_crossover
    points = run_pmax_sweep(iterations=iterations, jobs=jobs)
    print(format_table(
        ["P_max", "TMS II", "TMS C_delay", "misspec freq", "cyc/iter"],
        [[p.p_max, p.tms_ii, p.tms_cdelay,
          f"{100 * p.misspec_frequency:.3f}%", p.cycles_per_iteration]
         for p in points],
        title="Ablation: P_max sweep (Table-3 loops)."))
    comm = run_comm_latency_sweep(iterations=iterations, jobs=jobs)
    print(format_table(
        ["C_reg_com", "avg C_delay", "avg cyc/iter"],
        [[r["reg_comm_latency"], r["avg_c_delay"],
          r["avg_cycles_per_iteration"]] for r in comm],
        title="Ablation: operand-network latency sweep."))
    cores = run_core_sweep(iterations=iterations, jobs=jobs)
    print(format_table(
        ["ncore", "avg TMS II", "avg C_delay", "avg cyc/iter"],
        [[r["ncore"], r["avg_tms_ii"], r["avg_c_delay"],
          r["avg_cycles_per_iteration"]] for r in cores],
        title="Ablation: core-count sweep."))
    grains = run_granularity_sweep(iterations=iterations,
                                   benchmarks=["art"])
    print(format_table(
        ["unroll", "avg TMS II", "pairs/orig-iter", "cyc/orig-iter"],
        [[r["unroll_factor"], r["avg_tms_ii"],
          r["avg_pairs_per_orig_iteration"],
          r["avg_cycles_per_orig_iteration"]] for r in grains],
        title="Ablation: thread-granularity sweep via unrolling "
              "(fine-grain art loops)."))
    print(render_nest_crossover(run_nest_crossover(
        benchmarks=["equake", "fma3d"])))


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
