"""Shared compile-and-simulate pipeline for all experiments.

``compile_loop`` runs the full flow the paper's compiler runs per loop:
IR -> DDG -> {SMS, TMS} schedule -> post-pass -> metrics.  ``simulate_loop``
executes a compiled kernel on the SpMT machine (or single-core baselines).

Both route through the process-wide :class:`repro.session.Session`, so
repeated requests for the same ``(loop, arch, resources, config)`` point
— across tables, figures, sweeps and benches — reuse one compiled
artifact (and one timing template) instead of recompiling.
``compile_loop_uncached`` is the raw pipeline the session invokes on a
cache miss.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ArchConfig, SchedulerConfig
from ..costmodel.exectime import achieved_c_delay
from ..errors import SchedulingError
from ..graph.ddg import DDG, build_ddg
from ..graph.mii import compute_mii
from ..graph.paths import longest_dependence_path
from ..graph.scc import strongly_connected_components
from ..ir.loop import Loop
from ..machine.latency import LatencyModel
from ..machine.resources import ResourceModel
from ..obs.spans import span
from ..sched.degrade import schedule_with_degradation
from ..sched.ims import IterativeModuloScheduler
from ..sched.maxlive import max_live
from ..sched.postpass import PipelinedLoop, run_postpass
from ..sched.schedule import Schedule
from ..sched.sms import SwingModuloScheduler
from ..spmt.single import simulate_modulo_single_core, simulate_sequential
from ..spmt.stats import SimStats

__all__ = ["AlgResult", "CompiledLoop", "compile_loop",
           "compile_loop_uncached", "simulate_loop"]


@dataclass(frozen=True)
class AlgResult:
    """One algorithm's schedule plus its compile-time metrics."""

    schedule: Schedule
    pipelined: PipelinedLoop
    ii: int
    max_live: int
    c_delay: float

    @classmethod
    def from_schedule(cls, schedule: Schedule, arch: ArchConfig,
                      *, synchronize_memory: bool = False) -> "AlgResult":
        pipelined = run_postpass(schedule, arch,
                                 synchronize_memory=synchronize_memory)
        return cls(
            schedule=schedule,
            pipelined=pipelined,
            ii=schedule.ii,
            max_live=max_live(schedule),
            c_delay=achieved_c_delay(schedule, arch,
                                     include_memory=synchronize_memory),
        )


@dataclass(frozen=True)
class CompiledLoop:
    """Full per-loop compile result."""

    name: str
    ddg: DDG
    n_inst: int
    mii: int
    ldp: int
    n_scc: int
    sms: AlgResult
    tms: AlgResult

    @property
    def ilp_gap_sms(self) -> float:
        """LDP - II: the paper's proxy for exploited ILP."""
        return self.ldp - self.sms.ii

    @property
    def tlp_gap_tms(self) -> float:
        """II - C_delay: the paper's proxy for exposed TLP."""
        return self.tms.ii - self.tms.c_delay


def _nontrivial_scc_count(ddg: DDG) -> int:
    count = 0
    for comp in strongly_connected_components(ddg):
        if len(comp) > 1:
            count += 1
        elif any(e.dst == comp[0] for e in ddg.succs(comp[0])):
            count += 1
    return count


def compile_loop(source: Loop | DDG, arch: ArchConfig,
                 resources: ResourceModel | None = None,
                 config: SchedulerConfig | None = None,
                 latency: LatencyModel | None = None,
                 session=None) -> CompiledLoop:
    """Compile one loop with both SMS and TMS (cached per session)."""
    from ..session import get_session
    session = session or get_session()
    return session.compile(source, arch, resources, config, latency)


def compile_loop_uncached(source: Loop | DDG, arch: ArchConfig,
                          resources: ResourceModel | None = None,
                          config: SchedulerConfig | None = None,
                          latency: LatencyModel | None = None) -> CompiledLoop:
    """The raw compile flow (no caching; the session calls this on a
    cache miss)."""
    resources = resources or ResourceModel.default(arch.issue_width)
    config = config or SchedulerConfig()
    if isinstance(source, DDG):
        ddg = source
    else:
        ddg = build_ddg(source, latency or LatencyModel.for_arch(arch))
    with span("compile.sms", kernel=ddg.name):
        try:
            sms_sched = SwingModuloScheduler(ddg, resources, config).schedule()
        except SchedulingError:
            # SMS is restart-only and can wedge on pinched windows; GCC falls
            # back to list scheduling there — we fall back to the backtracking
            # modulo scheduler so suite runs never die on one loop.
            sms_sched = IterativeModuloScheduler(
                ddg, resources, config).schedule()
            sms_sched.meta["fallback_from"] = "SMS"
    # TMS routes through the degradation chain: a budget-exhausted or
    # failed (II, C_delay) search falls back TMS -> SMS -> IMS -> SEQ
    # (recording sched.degraded) instead of killing the whole suite run.
    with span("compile.tms", kernel=ddg.name):
        tms_sched = schedule_with_degradation(ddg, resources, arch, config)
    sync_mem = not config.speculation
    return CompiledLoop(
        name=ddg.name,
        ddg=ddg,
        n_inst=len(ddg),
        mii=compute_mii(ddg, resources),
        ldp=longest_dependence_path(ddg),
        n_scc=_nontrivial_scc_count(ddg),
        sms=AlgResult.from_schedule(sms_sched, arch,
                                    synchronize_memory=sync_mem),
        tms=AlgResult.from_schedule(tms_sched, arch,
                                    synchronize_memory=sync_mem),
    )


def simulate_loop(result: AlgResult, arch: ArchConfig,
                  iterations: int = 500, seed: int = 0xACE5,
                  session=None) -> SimStats:
    """Run one compiled kernel on the SpMT machine (timing template
    memoised per session)."""
    from ..session import get_session
    session = session or get_session()
    return session.simulate(result, arch, iterations, seed)


def simulate_baselines(compiled: CompiledLoop, arch: ArchConfig,
                       resources: ResourceModel, iterations: int
                       ) -> dict[str, SimStats]:
    """Single-threaded and single-core-modulo baselines for one loop."""
    return {
        "sequential": simulate_sequential(compiled.ddg, resources, iterations),
        "sms_single_core": simulate_modulo_single_core(
            compiled.sms.schedule, iterations),
    }
