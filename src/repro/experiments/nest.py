"""Loop-nest strategy crossover (motivates the paper's outer-loop future
work).

For a two-level nest, sweep the inner trip count and compare cycles per
*innermost* iteration under three strategies:

* **single-threaded** — the whole nest on one core (the no-parallelism
  floor);
* **inner-TMS** — the paper's strategy: each outer iteration runs the
  TMS-parallelised inner loop, paying the per-entry live-in broadcast and
  pipeline fill;
* **outer-DOALL** — outer iterations dealt to cores; shown as a
  *hypothetical* upper bound, because the paper's Table-3 nests have
  DOACROSS outer loops ("all their enclosing loops are also DOACROSS"),
  where this strategy is simply unavailable.

Short inner loops amortise the SpMT entry costs poorly — inner-TMS only
beats single-threaded once the trip count grows.  That erosion, plus the
gap to the hypothetical outer-DOALL bound, is the motivation for
"extending TMS to also parallelise outer loops".
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ArchConfig, SchedulerConfig
from ..machine.resources import ResourceModel
from ..spmt.nest import simulate_nest_inner_tms, simulate_nest_outer_parallel
from ..spmt.single import simulate_sequential
from ..workloads.doacross import DOACROSS_LOOPS
from .pipeline import compile_loop
from .report import format_table

__all__ = ["NestPoint", "run_nest_crossover", "render_nest_crossover"]


@dataclass(frozen=True)
class NestPoint:
    """One (loop, inner-trip) comparison."""

    loop: str
    inner_trip: int
    outer_trip: int
    single_cpi: float          # cycles per innermost iteration
    inner_tms_cpi: float
    outer_parallel_cpi: float  # hypothetical: needs a DOALL outer loop

    @property
    def tms_speedup(self) -> float:
        return self.single_cpi / self.inner_tms_cpi \
            if self.inner_tms_cpi else 1.0

    @property
    def winner(self) -> str:
        return ("inner-tms" if self.inner_tms_cpi <= self.single_cpi
                else "single-threaded")


def run_nest_crossover(inner_trips: tuple[int, ...] = (4, 16, 64, 256),
                       outer_trip: int = 64,
                       arch: ArchConfig | None = None,
                       config: SchedulerConfig | None = None,
                       benchmarks: list[str] | None = None
                       ) -> list[NestPoint]:
    arch = arch or ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    out: list[NestPoint] = []
    for sl in DOACROSS_LOOPS:
        if benchmarks is not None and sl.benchmark not in benchmarks:
            continue
        compiled = compile_loop(sl.loop, arch, resources, config)
        for trip in inner_trips:
            total = outer_trip * trip
            single = simulate_sequential(compiled.ddg, resources, trip)
            inner = simulate_nest_inner_tms(
                compiled.tms.pipelined, arch, outer_trip, trip)
            outer = simulate_nest_outer_parallel(
                compiled.ddg, resources, arch, outer_trip, trip)
            out.append(NestPoint(
                loop=compiled.name,
                inner_trip=trip,
                outer_trip=outer_trip,
                single_cpi=outer_trip * single.total_cycles / total,
                inner_tms_cpi=inner.total_cycles / total,
                outer_parallel_cpi=outer.total_cycles / total,
            ))
    return out


def render_nest_crossover(points: list[NestPoint]) -> str:
    rows = [
        [p.loop, p.inner_trip, p.single_cpi, p.inner_tms_cpi,
         p.outer_parallel_cpi, p.winner]
        for p in points
    ]
    return format_table(
        ["Loop", "inner trip", "single cyc/iter", "inner-TMS cyc/iter",
         "outer-DOALL cyc/iter (hypothetical)", "winner"],
        rows,
        title="Loop-nest strategy crossover (Table-3 nests have DOACROSS "
              "outer loops, so outer-DOALL is an unreachable bound).")
