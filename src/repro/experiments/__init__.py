"""Experiment harnesses: one module per table/figure of the paper.

Every harness returns plain data structures (lists of dataclasses / dicts)
and offers a ``render(...)`` producing the table the paper prints.  The
``runner`` module exposes them as a CLI (``python -m repro.experiments``),
and ``benchmarks/`` wraps each in a pytest-benchmark target.

Quick-vs-full: harnesses accept ``max_loops`` (per-benchmark population
cap) and ``iterations`` (simulated trip count); the defaults keep a full
run tractable on a laptop, and the benches further reduce them unless
``REPRO_FULL=1`` is set.
"""

from .pipeline import CompiledLoop, compile_loop, simulate_loop
from .table1 import table1
from .table2 import Table2Row, run_table2, render_table2
from .table3 import Table3Row, run_table3, render_table3
from .fig4 import Fig4Row, run_fig4, render_fig4
from .fig5 import Fig5Row, run_fig5, render_fig5
from .fig6 import Fig6Row, run_fig6, render_fig6
from .speculation import SpeculationRow, run_speculation, render_speculation
from .ablation import run_pmax_sweep, run_comm_latency_sweep, run_core_sweep

__all__ = [
    "CompiledLoop",
    "Fig4Row",
    "Fig5Row",
    "Fig6Row",
    "SpeculationRow",
    "Table2Row",
    "Table3Row",
    "compile_loop",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_speculation",
    "render_table2",
    "render_table3",
    "run_comm_latency_sweep",
    "run_core_sweep",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_pmax_sweep",
    "run_speculation",
    "run_table2",
    "run_table3",
    "simulate_loop",
    "table1",
]
