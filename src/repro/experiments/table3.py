"""Table 3: the selected DOACROSS loops and their TMS-scheduled metrics."""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ArchConfig, SchedulerConfig
from ..machine.resources import ResourceModel
from ..workloads.doacross import DOACROSS_LOOPS, SelectedLoop
from .pipeline import CompiledLoop
from .report import format_table

__all__ = ["Table3Row", "run_table3", "render_table3"]


@dataclass(frozen=True)
class Table3Row:
    """One benchmark group's aggregate Table-3 row."""

    benchmark: str
    n_loops: int
    coverage: float
    avg_inst: float
    avg_scc: float
    avg_mii: float
    avg_ldp: float
    tms_ii: float
    tms_maxlive: float
    tms_cdelay: float
    compiled: tuple[CompiledLoop, ...] = ()
    selected: tuple[SelectedLoop, ...] = ()


def run_table3(arch: ArchConfig | None = None,
               config: SchedulerConfig | None = None,
               keep_compiled: bool = True,
               session=None, jobs: int | None = None) -> list[Table3Row]:
    """Compile all seven Table-3 loops and aggregate per benchmark."""
    from ..session import get_session
    arch = arch or ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    session = session or get_session()
    all_compiled = session.compile_many(
        [sl.loop for sl in DOACROSS_LOOPS], arch, resources, config,
        jobs=jobs)
    groups: dict[str, list[tuple[SelectedLoop, CompiledLoop]]] = {}
    for sl, compiled in zip(DOACROSS_LOOPS, all_compiled):
        groups.setdefault(sl.benchmark, []).append((sl, compiled))
    rows: list[Table3Row] = []
    for benchmark, pairs in groups.items():
        n = len(pairs)
        selected = tuple(sl for sl, _c in pairs)
        compiled = tuple(c for _sl, c in pairs)
        rows.append(Table3Row(
            benchmark=benchmark,
            n_loops=n,
            coverage=sum(sl.coverage for sl in selected),
            avg_inst=sum(c.n_inst for c in compiled) / n,
            avg_scc=sum(c.n_scc for c in compiled) / n,
            avg_mii=sum(c.mii for c in compiled) / n,
            avg_ldp=sum(c.ldp for c in compiled) / n,
            tms_ii=sum(c.tms.ii for c in compiled) / n,
            tms_maxlive=sum(c.tms.max_live for c in compiled) / n,
            tms_cdelay=sum(c.tms.c_delay for c in compiled) / n,
            compiled=compiled if keep_compiled else (),
            selected=selected,
        ))
    return rows


def render_table3(rows: list[Table3Row], *, with_paper: bool = True) -> str:
    headers = ["Benchmark", "#Loops", "LC", "AVG #Inst", "AVG #SCC",
               "AVG MII", "LDP", "TMS II", "TMS ML", "TMS D"]
    table_rows = []
    for r in rows:
        table_rows.append([
            r.benchmark, r.n_loops, f"{100 * r.coverage:.1f}%", r.avg_inst,
            r.avg_scc, r.avg_mii, r.avg_ldp, r.tms_ii, r.tms_maxlive,
            r.tms_cdelay,
        ])
        if with_paper and r.selected:
            sl = r.selected[0]
            table_rows.append([
                "  (paper)", "", "", "", "", sl.paper_mii, sl.paper_ldp,
                sl.paper_tms_ii, sl.paper_tms_maxlive, sl.paper_tms_cdelay,
            ])
    return format_table(
        headers, table_rows,
        title="Table 3. Selected DOACROSS loops and their TMS-scheduled "
              "loops.")
