"""``tms-experiments validate``: cost model vs simulator, per kernel.

The Section 4.2 cost model (``T = T_nomiss + T_mis_spec``) is what TMS
*optimises*; the SpMT simulator is what the paper *measures*.  This
harness compiles the Table 2 and/or Table 3 kernel suites, asks the
model for its predicted total cycles per (kernel, algorithm) point,
simulates the same point, and assembles a
:class:`~repro.obs.report.DiscrepancyReport` — the per-kernel error
table plus aggregate MAPE that makes cost-model regressions visible.

The model is a steady-state throughput bound, so expect systematic
(not just noise-level) error on kernels where squash cascades or cache
perturbation dominate; the point of the report is that the error is
*tracked*, kernel by kernel, commit by commit.
"""

from __future__ import annotations

import json
import os
from typing import Sequence

from ..config import ArchConfig, SchedulerConfig
from ..costmodel.exectime import estimate_execution_time
from ..ir.loop import Loop
from ..machine.resources import ResourceModel
from ..obs.report import DiscrepancyReport, DiscrepancyRow
from ..workloads.doacross import DOACROSS_LOOPS
from ..workloads.specfp import SPECFP_BENCHMARKS, generate_benchmark_loops

__all__ = ["run_validate", "suite_loops", "write_report_json"]

#: suites the validator knows how to enumerate
_SUITES = ("table2", "table3")


def suite_loops(suites: Sequence[str],
                max_loops: int | None) -> list[tuple[str, Loop]]:
    """(benchmark, loop) pairs of the requested kernel suites."""
    for s in suites:
        if s not in _SUITES:
            raise ValueError(f"unknown suite {s!r}; expected one of {_SUITES}")
    pairs: list[tuple[str, Loop]] = []
    if "table2" in suites:
        for spec in SPECFP_BENCHMARKS:
            for loop in generate_benchmark_loops(spec, max_loops=max_loops):
                pairs.append((spec.name, loop))
    if "table3" in suites:
        for sl in DOACROSS_LOOPS:
            pairs.append((sl.benchmark, sl.loop))
    return pairs


#: backwards-compatible alias (pre-chaos name)
_suite_loops = suite_loops


def run_validate(arch: ArchConfig | None = None,
                 config: SchedulerConfig | None = None, *,
                 suites: Sequence[str] = ("table2",),
                 algorithms: Sequence[str] = ("sms", "tms"),
                 max_loops: int | None = None,
                 iterations: int = 300,
                 seed: int = 0xACE5,
                 jobs: int | None = None,
                 session=None) -> DiscrepancyReport:
    """Build the discrepancy report for the requested kernel suites.

    Compilation and simulation route through ``session`` (default: the
    process session), so a warm cache makes reruns cheap; kernels whose
    compilation fails are skipped (soft-fail, like the suite drivers).
    """
    from ..session import get_session
    arch = arch or ArchConfig.paper_default()
    config = config or SchedulerConfig()
    resources = ResourceModel.default(arch.issue_width)
    session = session or get_session()

    pairs = suite_loops(suites, max_loops)
    compiled = session.compile_many(
        [loop for _b, loop in pairs], arch, resources, config,
        jobs=jobs, on_error="skip")

    # one (kernel, algorithm) point per row, simulations fanned out
    points: list[tuple[str, str, str, object]] = []
    for (benchmark, _loop), comp in zip(pairs, compiled):
        if comp is None:
            continue
        for alg in algorithms:
            points.append((comp.name, benchmark, alg, getattr(comp, alg)))
    stats = session.simulate_many(
        [alg_result for _k, _b, _a, alg_result in points], arch,
        iterations, seed, jobs=jobs, on_error="skip")

    synchronize_memory = not config.speculation
    rows: list[DiscrepancyRow] = []
    for (kernel, benchmark, alg, alg_result), sim in zip(points, stats):
        if sim is None:
            continue
        est = estimate_execution_time(
            alg_result.schedule, arch, iterations,
            synchronize_memory=synchronize_memory)
        rows.append(DiscrepancyRow(
            kernel=kernel,
            benchmark=benchmark,
            algorithm=alg,
            ii=alg_result.ii,
            c_delay=est.c_delay,
            p_m=est.p_m,
            predicted_cycles=est.total,
            simulated_cycles=sim.total_cycles,
        ))
    return DiscrepancyReport(rows=tuple(rows), iterations=iterations,
                             seed=seed, ncore=arch.ncore)


def write_report_json(report: DiscrepancyReport,
                      path: str | os.PathLike) -> None:
    """Persist the report's versioned dict form as pretty JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
