"""Table 2: SMS vs TMS over the synthetic SPECfp2000 suite.

For every benchmark, compile all its loops with both algorithms and report
the per-benchmark averages of the traditional modulo-scheduling metrics:
#Loops, AVG #Inst, AVG MII, and per-algorithm II / MaxLive / C_delay.

Expected shape (paper Section 5.1): TMS has larger II but much smaller
C_delay than SMS; MaxLive slightly larger under TMS; the gap between II and
C_delay (exposed TLP) much wider under TMS.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import ArchConfig, SchedulerConfig
from ..machine.resources import ResourceModel
from ..workloads.specfp import SPECFP_BENCHMARKS, BenchmarkSpec, generate_benchmark_loops
from .pipeline import CompiledLoop
from .report import format_table

__all__ = ["Table2Row", "run_table2", "render_table2"]


@dataclass(frozen=True)
class Table2Row:
    """One benchmark's aggregate row."""

    benchmark: str
    n_loops: int
    avg_inst: float
    avg_mii: float
    sms_ii: float
    sms_maxlive: float
    sms_cdelay: float
    tms_ii: float
    tms_maxlive: float
    tms_cdelay: float
    compiled: tuple[CompiledLoop, ...] = ()

    @property
    def tlp_gap_sms(self) -> float:
        return self.sms_ii - self.sms_cdelay

    @property
    def tlp_gap_tms(self) -> float:
        return self.tms_ii - self.tms_cdelay


def run_table2(arch: ArchConfig | None = None,
               config: SchedulerConfig | None = None,
               max_loops: int | None = None,
               benchmarks: list[str] | None = None,
               keep_compiled: bool = True,
               session=None, jobs: int | None = None,
               workload_seed: int | None = None) -> list[Table2Row]:
    """Compile the suite and aggregate per benchmark.

    ``max_loops`` caps each benchmark's population for quick runs;
    ``benchmarks`` selects a subset by name.  Compilation goes through
    ``session`` (default: the process session, so reruns hit the cache)
    and fans cache misses out over ``jobs`` processes (``REPRO_JOBS``).
    ``workload_seed`` perturbs the synthetic populations (CLI
    ``--seed``); ``None``/0 keeps the canonical Table-2 suite.
    """
    from ..session import get_session
    arch = arch or ArchConfig.paper_default()
    config = config or SchedulerConfig()
    resources = ResourceModel.default(arch.issue_width)
    session = session or get_session()
    rows: list[Table2Row] = []
    for spec in SPECFP_BENCHMARKS:
        if benchmarks is not None and spec.name not in benchmarks:
            continue
        loops = generate_benchmark_loops(spec, max_loops=max_loops,
                                         seed=workload_seed)
        compiled = session.compile_many(loops, arch, resources, config,
                                        jobs=jobs)
        n = len(compiled)
        rows.append(Table2Row(
            benchmark=spec.name,
            n_loops=n,
            avg_inst=sum(c.n_inst for c in compiled) / n,
            avg_mii=sum(c.mii for c in compiled) / n,
            sms_ii=sum(c.sms.ii for c in compiled) / n,
            sms_maxlive=sum(c.sms.max_live for c in compiled) / n,
            sms_cdelay=sum(c.sms.c_delay for c in compiled) / n,
            tms_ii=sum(c.tms.ii for c in compiled) / n,
            tms_maxlive=sum(c.tms.max_live for c in compiled) / n,
            tms_cdelay=sum(c.tms.c_delay for c in compiled) / n,
            compiled=tuple(compiled) if keep_compiled else (),
        ))
    return rows


def render_table2(rows: list[Table2Row], *, with_paper: bool = True) -> str:
    """Render in the paper's Table 2 layout (optionally interleaving the
    paper's reported values for comparison)."""
    headers = ["Benchmark", "#Loops", "AVG #Inst", "AVG MII",
               "SMS II", "SMS MaxLive", "SMS Cdelay",
               "TMS II", "TMS MaxLive", "TMS Cdelay"]
    table_rows = []
    by_name = {spec.name: spec for spec in SPECFP_BENCHMARKS}
    for row in rows:
        table_rows.append([
            row.benchmark, row.n_loops, row.avg_inst, row.avg_mii,
            row.sms_ii, row.sms_maxlive, row.sms_cdelay,
            row.tms_ii, row.tms_maxlive, row.tms_cdelay,
        ])
        paper = by_name[row.benchmark].paper if with_paper else None
        if paper is not None:
            table_rows.append([
                f"  (paper)", "", "", paper.mii,
                paper.sms_ii, paper.sms_maxlive, paper.sms_cdelay,
                paper.tms_ii, paper.tms_maxlive, paper.tms_cdelay,
            ])
    return format_table(
        headers, table_rows,
        title="Table 2. SMS and TMS compared using traditional metrics.")
