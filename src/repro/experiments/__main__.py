"""``python -m repro.experiments`` — same CLI as ``tms-experiments``:
tables/figures, ``compile``, ``validate`` and ``dse`` subcommands."""

from .runner import main

raise SystemExit(main())
