"""The request broker: admission control, coalescing, warm execution.

The broker is the heart of the serve daemon.  Request threads (one per
HTTP connection under the threading server) call :meth:`RequestBroker.
submit`, which walks the admission pipeline:

1. **draining?** — a daemon in graceful shutdown answers every new
   submission with a typed ``draining`` rejection;
2. **result cache** — a completed identical request (same work
   fingerprint) is answered from a bounded LRU of past responses
   without touching the queue (``serve.result_hits``);
3. **coalescing** — an *in-flight* identical request adopts the
   existing job: the waiter blocks on the same event and receives the
   exact same response object (``serve.coalesce_hits``), so N
   concurrent identical submissions cost one computation;
4. **admission control** — a genuinely new job is admitted only while
   the number of distinct in-flight jobs is below
   ``max_queue_depth``; beyond it the submission is rejected
   ``queue_full`` (backpressure, never an unbounded queue);
5. **execution** — admitted jobs are executed FIFO by the broker's
   executor threads against one shared warm
   :class:`~repro.session.session.Session` (persistent worker pool,
   thread-safe artifact cache), each wrapped in a ``serve.request``
   span.  A request's ``deadline_seconds`` budget spans queue wait and
   execution: expiry before execution, or a per-task
   :class:`~repro.errors.TaskTimeout` from the runner's ``timeout=`` /
   ``retries=`` machinery during it, becomes a typed ``deadline``
   rejection.

:func:`execute_request` is the single execution path — the daemon and
the serve-vs-direct equivalence tests call the same function, so "the
daemon answers exactly what a local Session would" is checkable
byte-for-byte.

Two resilience hooks wrap the pipeline (see docs/serving.md):

* a :class:`~repro.serve.journal.RequestJournal` (when configured)
  records every admission before execution and every completion after,
  so a crashed daemon replays incomplete work on restart — completed
  responses are *restored* into the result cache, admitted-but-
  unfinished requests are *recovered* by re-executing them, and
  unparseable entries are *abandoned* (``/stats`` → ``journal``);
* a :class:`~repro.serve.resilience.HealthPolicy` folds queue pressure,
  worker-pool rebuilds and the recent deadline-miss rate into an
  ``ok → degraded → draining`` state (``/healthz``); when degradation
  is driven by *execution* distress (pool rebuilds, deadline misses)
  the broker sheds coalescible-duplicate submissions first (typed
  ``shed`` rejection) because the adopted computation still completes
  and a retry is a cache hit.  Pure queue pressure never sheds — a
  coalesced duplicate costs no queue slot, and coalescing at full
  depth is a documented admission property.
"""

from __future__ import annotations

import collections
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..config import ArchConfig
from ..errors import ProtocolError, TaskTimeout
from ..obs import metrics
from ..obs.spans import span
from ..session import Session
from ..session.cache import MISS, ArtifactCache
from .journal import RequestJournal, read_journal
from .protocol import (
    ServeRequest,
    compile_result_dict,
    error_response,
    ok_response,
    rejected_response,
    simulate_result_dict,
)
from .resilience import HEALTH_DEGRADED, HealthPolicy, HealthReport

__all__ = ["BrokerConfig", "RequestBroker", "execute_request"]

#: sentinel shutting one executor thread down
_STOP = object()


@dataclass(frozen=True)
class BrokerConfig:
    """Admission-control and execution knobs of one broker."""

    #: distinct in-flight jobs admitted before ``queue_full`` rejections
    max_queue_depth: int = 64
    #: executor threads draining the job queue (1 = strictly FIFO)
    workers: int = 1
    #: completed responses kept for identical future requests (LRU)
    result_cache_size: int = 512
    #: deadline applied when a request doesn't carry its own
    default_deadline_seconds: float | None = None
    #: per-job retry waves for transient worker failures (crashes)
    retries: int = 0
    #: thresholds of the ok → degraded health machine
    #: (execution-distressed degradation sheds coalescible-duplicate
    #: load first; see docs/serving.md)
    health: HealthPolicy = field(default_factory=HealthPolicy)

    def __post_init__(self) -> None:
        if self.max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, "
                             f"got {self.max_queue_depth}")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.result_cache_size < 1:
            raise ValueError(f"result_cache_size must be >= 1, "
                             f"got {self.result_cache_size}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")


def execute_request(session: Session, request: ServeRequest, *,
                    timeout: float | None = None,
                    retries: int = 0) -> dict[str, Any]:
    """Execute one request against ``session`` and return its result
    payload — the daemon's execution path, importable so direct callers
    (and the equivalence tests) compute byte-identical results.

    Routes through ``compile_many`` / ``simulate_many`` (lists of one)
    so serve-side and direct-side telemetry have the same shape, the
    artifact cache is shared, and ``timeout`` / ``retries`` ride the
    runner's per-task machinery.
    """
    from ..ir import parse_loop, unroll_loop

    loop = parse_loop(request.source)
    if request.unroll > 1:
        loop = unroll_loop(loop, request.unroll)
    arch = ArchConfig.paper_default().with_cores(request.cores)
    compiled = session.compile_many([loop], arch, timeout=timeout,
                                    retries=retries)[0]
    if request.kind == "compile":
        return compile_result_dict(compiled)
    alg = compiled.tms if request.policy == "tms" else compiled.sms
    stats = session.simulate_many([alg], arch,
                                  iterations=request.iterations,
                                  seed=request.seed, timeout=timeout,
                                  retries=retries)[0]
    return simulate_result_dict(compiled, request.policy, alg, stats)


def _deadline_expired(exc: BaseException | None) -> bool:
    """Whether a :class:`~repro.errors.TaskTimeout` hides anywhere in
    the exception chain (``unwrap`` re-wraps captured task errors)."""
    seen: set[int] = set()
    while exc is not None and id(exc) not in seen:
        if isinstance(exc, TaskTimeout):
            return True
        seen.add(id(exc))
        exc = exc.__cause__ or exc.__context__
    return False


class _Job:
    """One admitted unit of work and everyone waiting on it."""

    __slots__ = ("request", "fingerprint", "admitted_at", "response",
                 "served", "done", "replay")

    def __init__(self, request: ServeRequest, fingerprint: str,
                 admitted_at: float, *, replay: bool = False) -> None:
        self.request = request
        self.fingerprint = fingerprint
        self.admitted_at = admitted_at
        self.response: dict[str, Any] | None = None
        self.served = "computed"
        self.done = threading.Event()
        #: journal-replay job: no external waiter, recovered/abandoned
        #: accounting instead of request tallies
        self.replay = replay


class RequestBroker:
    """Thread-safe request front end over one warm :class:`Session`.

    Parameters
    ----------
    session:
        The compile/simulate context every job runs against.  Defaults
        to a fresh persistent session (warm worker pool; call
        :meth:`stop` to release it).
    config:
        Admission/execution knobs (:class:`BrokerConfig`).
    execute:
        The job execution function — :func:`execute_request` unless a
        test injects a stub.
    """

    def __init__(self, session: Session | None = None,
                 config: BrokerConfig | None = None, *,
                 execute: Callable[..., dict[str, Any]] | None = None,
                 journal: RequestJournal | None = None) -> None:
        self.session = session if session is not None \
            else Session(persistent=True)
        self.config = config or BrokerConfig()
        self._execute = execute or execute_request
        self._results = ArtifactCache(maxsize=self.config.result_cache_size)
        self._queue: "queue.SimpleQueue[Any]" = queue.SimpleQueue()
        self._in_flight: dict[str, _Job] = {}
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._threads: list[threading.Thread] = []
        self._draining = False
        self._stopped = False
        self.journal = journal
        self._recovered_once = False
        #: recent executed-job outcomes paired with the pool-rebuild
        #: counter at completion — the health machine's sliding window
        self._recent: collections.deque[tuple[str, int]] = \
            collections.deque(maxlen=self.config.health.window)
        self._rebuilds_baseline = self._pool_rebuilds_now()
        #: journal-replay tallies, surfaced in ``/stats`` under "journal"
        self.journal_counts = {"restored": 0, "recovered": 0,
                               "abandoned": 0}
        #: exact submission-outcome tallies (mirrored into ``serve.*``
        #: registry metrics; kept locally too so summaries never race)
        self.counts = {
            "requests": 0,
            "completed": 0,
            "coalesce_hits": 0,
            "result_hits": 0,
            "errors": 0,
            "rejects_queue_full": 0,
            "rejects_deadline": 0,
            "rejects_draining": 0,
            "rejects_shed": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "RequestBroker":
        """Spawn the executor threads (idempotent) and, on the first
        start with a journal, replay it."""
        with self._lock:
            if self._threads or self._stopped:
                return self
            for i in range(self.config.workers):
                t = threading.Thread(target=self._worker_loop,
                                     name=f"serve-exec-{i}", daemon=True)
                t.start()
                self._threads.append(t)
        self._recover()
        return self

    @staticmethod
    def _pool_rebuilds_now() -> int:
        # peek, don't create: materializing the counter here would make
        # serve-vs-direct metric totals diverge when no pool ever broke
        inst = metrics.get_registry().get("runner.pool_rebuilds")
        return inst.value if inst is not None else 0

    def _recover(self) -> None:
        """Journal replay (once): restore completed responses into the
        result cache, re-execute incomplete admitted work, abandon what
        cannot be replayed, then compact the journal."""
        if self.journal is None or self._recovered_once:
            return
        self._recovered_once = True
        replay = read_journal(self.journal.path)
        for fingerprint, response in replay.completed.items():
            self._results.put(fingerprint, response)
        self.journal_counts["restored"] = len(replay.completed)
        metrics.counter("serve.journal.restored",
                        "completed responses restored into the result "
                        "cache on restart").inc(len(replay.completed))
        self.journal.compact(replay.completed)
        for payload in replay.incomplete.values():
            try:
                request = ServeRequest.from_dict(payload)
            except ProtocolError:
                self._abandon()
                continue
            # recompute the fingerprint: the journaled one may predate a
            # version bump, and replayed results must answer *new* requests
            fingerprint = request.fingerprint()
            with self._lock:
                if fingerprint in self._in_flight:
                    continue
                job = _Job(request, fingerprint, time.monotonic(),
                           replay=True)
                self._in_flight[fingerprint] = job
            # re-arm the WAL: a crash during replay still recovers
            self.journal.admitted(fingerprint, request.to_dict())
            self._queue.put(job)

    def _abandon(self) -> None:
        with self._lock:
            self.journal_counts["abandoned"] += 1
        metrics.counter("serve.journal.abandoned",
                        "journaled work that could not be replayed").inc()

    @property
    def draining(self) -> bool:
        return self._draining

    def health(self) -> HealthReport:
        """The broker's live health state (``ok`` / ``degraded`` /
        ``draining``) with the reasons that drove it."""
        with self._lock:
            return self._health_locked()

    def _health_locked(self) -> HealthReport:
        recent = list(self._recent)
        baseline = recent[0][1] if recent else self._rebuilds_baseline
        report = self.config.health.evaluate(
            draining=self._draining,
            queue_depth=len(self._in_flight),
            max_queue_depth=self.config.max_queue_depth,
            recent_outcomes=[outcome for outcome, _ in recent],
            pool_rebuilds_in_window=self._pool_rebuilds_now() - baseline)
        metrics.gauge(
            "serve.health",
            "health state: 0 ok, 1 degraded, 2 draining").set(
            {"ok": 0, "degraded": 1, "draining": 2}.get(report.state, 0))
        return report

    def begin_drain(self) -> None:
        """Stop admitting new jobs; in-flight jobs keep running."""
        self._draining = True

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every in-flight job has completed (or ``timeout``
        elapses); returns whether the queue fully drained."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._in_flight:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(timeout=remaining)
        return True

    def stop(self, drain: bool = True,
             timeout: float | None = None) -> bool:
        """Graceful shutdown: reject new work, optionally wait for the
        queue to drain, stop the executors, release the session's warm
        pool.  Returns whether the drain completed."""
        self.begin_drain()
        drained = self.drain(timeout) if drain else False
        with self._lock:
            already = self._stopped
            self._stopped = True
            threads = list(self._threads)
        if not already:
            for _ in threads:
                self._queue.put(_STOP)
            for t in threads:
                t.join(timeout=5.0)
            self.session.close()
        return drained

    # -- submission ----------------------------------------------------------

    def submit(self, request: "ServeRequest | Mapping[str, Any]"
               ) -> tuple[dict[str, Any], str]:
        """Run one request through the admission pipeline; blocks until
        it completes, is answered from cache, or is rejected.

        Returns ``(response_dict, served)`` where ``served`` is how the
        response was produced: ``computed`` (this submission ran it),
        ``coalesced`` (it shared an identical in-flight job),
        ``cached`` (a past response answered it), or ``rejected``.
        Malformed request payloads raise
        :class:`~repro.errors.ProtocolError`.
        """
        if not isinstance(request, ServeRequest):
            request = ServeRequest.from_dict(request)
        self._count("requests")
        metrics.counter("serve.requests", "requests submitted").inc()
        fingerprint = request.fingerprint()
        if self._draining:
            return self._reject(request, "draining"), "rejected"
        cached = self._results.get(fingerprint)
        if cached is not MISS:
            self._count("result_hits")
            metrics.counter("serve.result_hits",
                            "requests answered from the response "
                            "cache").inc()
            return cached, "cached"
        coalesced = False
        with self._lock:
            job = self._in_flight.get(fingerprint)
            if job is not None:
                if self._health_locked().shed_duplicates:
                    # execution is distressed: shed the cheapest load
                    # first — this duplicate's computation still
                    # completes, so a retry lands in the result cache
                    return self._reject(request, "shed",
                                        locked=True), "rejected"
                coalesced = True
            else:
                if len(self._in_flight) >= self.config.max_queue_depth:
                    return self._reject(request, "queue_full",
                                        locked=True), "rejected"
                job = _Job(request, fingerprint, time.monotonic())
                self._in_flight[fingerprint] = job
                self._gauge_depth_locked()
        if coalesced:
            self._count("coalesce_hits")
            metrics.counter("serve.coalesce_hits",
                            "requests coalesced onto an in-flight "
                            "identical job").inc()
        else:
            # WAL discipline: the admission hits the journal *before*
            # the job can execute, so a crash between here and the
            # completion record replays the work on restart
            if self.journal is not None:
                self.journal.admitted(fingerprint, request.to_dict())
            self._queue.put(job)
        self.start()
        deadline = request.deadline_seconds \
            if request.deadline_seconds is not None \
            else self.config.default_deadline_seconds
        if coalesced and deadline is not None \
                and not job.done.wait(timeout=deadline):
            # this waiter's budget expired mid-coalesce-wait; the
            # computation it adopted keeps running for everyone else
            return self._reject(request, "deadline"), "rejected"
        job.done.wait()
        assert job.response is not None
        if job.response["status"] == "rejected":
            return job.response, "rejected"
        return job.response, ("coalesced" if coalesced else "computed")

    def _reject(self, request: ServeRequest, reason: str, *,
                locked: bool = False) -> dict[str, Any]:
        self._count(f"rejects_{reason}", locked=locked)
        metrics.counter(f"serve.rejects.{reason}",
                        f"requests rejected: {reason}").inc()
        return rejected_response(request, reason)

    def _count(self, name: str, *, locked: bool = False) -> None:
        if locked:
            self.counts[name] += 1
            return
        with self._lock:
            self.counts[name] += 1

    def _gauge_depth_locked(self) -> None:
        metrics.gauge("serve.queue_depth",
                      "distinct in-flight jobs").set(len(self._in_flight))

    # -- execution -----------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is _STOP:
                return
            try:
                self._run_job(job)
            except Exception as exc:  # noqa: BLE001 — waiters must wake
                self._count("errors")
                job.response = error_response(
                    job.request,
                    f"internal error: {type(exc).__name__}: {exc}")
            finally:
                with self._idle:
                    self._in_flight.pop(job.fingerprint, None)
                    self._gauge_depth_locked()
                    self._idle.notify_all()
                job.done.set()

    def _run_job(self, job: _Job) -> None:
        request = job.request
        deadline = request.deadline_seconds \
            if request.deadline_seconds is not None \
            else self.config.default_deadline_seconds
        outcome = "ok"
        with span("serve.request", kind=request.kind,
                  request_id=request.request_id()) as s, \
                metrics.timer("serve.request_seconds",
                              "admission-to-response wall time of "
                              "executed jobs").time():
            remaining = None
            if deadline is not None:
                remaining = deadline - (time.monotonic() - job.admitted_at)
            if remaining is not None and remaining <= 0:
                # the deadline burned down while the job sat in the queue
                response = self._reject(request, "deadline")
                outcome = "deadline"
            else:
                try:
                    result = self._execute(self.session, request,
                                           timeout=remaining,
                                           retries=self.config.retries)
                    response = ok_response(request, result)
                except Exception as exc:  # noqa: BLE001 — typed into the response
                    if _deadline_expired(exc):
                        response = self._reject(request, "deadline")
                        outcome = "deadline"
                    else:
                        self._count("errors")
                        metrics.counter(
                            "serve.errors",
                            "requests whose execution raised").inc()
                        response = error_response(
                            request, f"{type(exc).__name__}: {exc}")
                        outcome = "error"
            if s is not None:
                s.attrs["outcome"] = outcome
        rebuilds = self._pool_rebuilds_now()
        with self._lock:
            self._recent.append((outcome, rebuilds))
        if outcome == "ok":
            self._count("completed")
            metrics.counter("serve.completed",
                            "requests executed to completion").inc()
            self._results.put(job.fingerprint, response)
        if self.journal is not None:
            self.journal.completed(
                job.fingerprint, response["status"],
                response if outcome == "ok" else None)
        if job.replay:
            if outcome == "ok":
                with self._lock:
                    self.journal_counts["recovered"] += 1
                metrics.counter(
                    "serve.journal.recovered",
                    "journaled incomplete requests re-executed on "
                    "restart").inc()
            else:
                self._abandon()
        job.response = response

    # -- reporting -----------------------------------------------------------

    def queue_depth(self) -> int:
        with self._lock:
            return len(self._in_flight)

    def stats(self) -> dict[str, Any]:
        """The ``/stats`` payload: outcome tallies, both caches, the
        session's counters, and the admission knobs."""
        with self._lock:
            counts = dict(self.counts)
            depth = len(self._in_flight)
            health = self._health_locked()
            journal_counts = dict(self.journal_counts)
        stats = self.session.stats
        journal: dict[str, Any] | None = None
        if self.journal is not None:
            journal = self.journal.stats_dict()
            journal.update(journal_counts)
        return {
            "draining": self._draining,
            "health": health.to_dict(),
            "queue_depth": depth,
            "max_queue_depth": self.config.max_queue_depth,
            "workers": self.config.workers,
            "counts": counts,
            "journal": journal,
            "cache": self.session.cache.stats_dict(),
            "result_cache": self._results.stats_dict(),
            "session": {
                "compiles": stats.compiles,
                "simulations": stats.simulations,
                "template_builds": stats.template_builds,
                "template_hits": stats.template_hits,
            },
        }

    def summary(self) -> str:
        """One-line tally for shutdown logs and the run ledger."""
        c = self.counts
        rejected = sum(c[f"rejects_{reason}"]
                       for reason in ("queue_full", "deadline",
                                      "draining", "shed"))
        return (f"{c['requests']} requests: {c['completed']} computed, "
                f"{c['coalesce_hits']} coalesced, {c['result_hits']} cached, "
                f"{c['errors']} errors, {rejected} rejected")
