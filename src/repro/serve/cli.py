"""``tms-experiments serve`` / ``tms-experiments submit``.

``serve`` runs the daemon in the foreground until SIGTERM/SIGINT or an
in-band ``/shutdown``, then prints the request tally; its run-ledger
record (appended by :func:`repro.experiments.runner.main`) carries the
same tally in ``extra``.  With ``--supervise`` this process becomes the
supervisor parent instead: it forks the daemon as a child
(``python -m repro.experiments serve ...``), watches ``/healthz``
heartbeats, and restarts it on crash or hang with capped exponential
backoff; pair it with ``--journal-dir`` so a restarted child replays
incomplete work (see docs/serving.md).  ``submit`` sends one request to
a running daemon and exits with a typed code
(:data:`~repro.serve.protocol.EXIT_OK` / ``EXIT_ERROR`` /
``EXIT_REJECTED`` / ``EXIT_UNAVAILABLE``) so shell pipelines and CI can
branch on the outcome; ``--retries`` / ``--hedge`` arm the hardened
client paths.
"""

from __future__ import annotations

import argparse
import json
import signal
import socket
import subprocess
import sys
from pathlib import Path

from ..errors import AdmissionRejected, ProtocolError, ServerUnavailable
from .protocol import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REJECTED,
    EXIT_UNAVAILABLE,
    KINDS,
    POLICIES,
    ServeRequest,
)

__all__ = ["add_chaos_serve_arguments", "add_serve_arguments",
           "add_submit_arguments", "run_chaos_serve_command",
           "run_serve_command", "run_submit_command"]

DEFAULT_PORT = 8437


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"bind port; 0 picks a free one "
                             f"(default: {DEFAULT_PORT})")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="max distinct in-flight jobs before "
                             "queue_full rejections (default: 64)")
    parser.add_argument("--serve-workers", type=int, default=1,
                        help="broker executor threads (default: 1, "
                             "strictly FIFO)")
    parser.add_argument("--result-cache-size", type=int, default=512,
                        help="completed responses kept for identical "
                             "future requests (default: 512)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="default per-request deadline in seconds "
                             "(requests may carry their own)")
    parser.add_argument("--retries", type=int, default=0,
                        help="retry waves for transient worker crashes "
                             "(default: 0)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes in the warm pool "
                             "(default: $REPRO_JOBS or sequential)")
    parser.add_argument("--max-tasks-per-worker", type=int, default=None,
                        help="recycle the worker pool after this many "
                             "tasks per worker (hygiene for long-lived "
                             "daemons)")
    parser.add_argument("--max-body-bytes", type=int, default=None,
                        help="request body cap; larger bodies get a "
                             "typed HTTP 413 (default: 1 MiB)")
    parser.add_argument("--journal-dir", default=None,
                        help="directory for the crash-safe request "
                             "journal; a restarted daemon replays "
                             "incomplete work from it")
    parser.add_argument("--supervise", action="store_true",
                        help="run as a supervisor: fork the daemon as a "
                             "child, watch /healthz, restart on crash "
                             "or hang with capped backoff")
    parser.add_argument("--max-restarts", type=int, default=None,
                        help="supervisor gives up after this many "
                             "restarts (default: never)")
    parser.add_argument("--hang-timeout", type=float, default=15.0,
                        help="supervisor kills a child silent on "
                             "/healthz for this long (default: 15)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request")


def add_submit_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("path", help="loop source file (repro.ir.dsl "
                                     "syntax), or - for stdin")
    parser.add_argument("--server", default=f"127.0.0.1:{DEFAULT_PORT}",
                        help=f"daemon address host:port (default: "
                             f"127.0.0.1:{DEFAULT_PORT})")
    parser.add_argument("--kind", choices=KINDS, default="simulate",
                        help="unit of work (default: simulate)")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--unroll", type=int, default=1,
                        help="unroll factor (thread granularity)")
    parser.add_argument("--iterations", type=int, default=500,
                        help="simulated trip count (simulate)")
    parser.add_argument("--seed", type=int, default=0xACE5,
                        help="simulator seed (simulate)")
    parser.add_argument("--policy", choices=POLICIES, default="tms",
                        help="kernel to simulate (default: tms)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-request deadline in seconds")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="client-side HTTP timeout (default: 300)")
    parser.add_argument("--retries", type=int, default=0,
                        help="retry transport failures and retryable "
                             "rejections this many times with capped "
                             "exponential backoff (default: 0)")
    parser.add_argument("--hedge", type=float, default=None, metavar="SECS",
                        help="launch an identical second request if the "
                             "first hasn't answered within SECS (safe: "
                             "the daemon coalesces identical work)")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="also write the raw response JSON to a file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the human-readable summary")


def add_chaos_serve_arguments(parser: argparse.ArgumentParser) -> None:
    from .chaos import DEFAULT_SEED, SERVE_SCENARIOS

    parser.add_argument("--scenario", action="append", default=None,
                        choices=SERVE_SCENARIOS, dest="scenarios",
                        help="run only this scenario (repeatable; "
                             "default: all)")
    parser.add_argument("--requests", type=int, default=6,
                        help="burst size per scenario (default: 6)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help=f"campaign seed (default: {DEFAULT_SEED:#x}); "
                             f"same-seed reruns produce byte-identical "
                             f"reports")
    parser.add_argument("--retries", type=int, default=10,
                        help="client retry budget per request "
                             "(default: 10)")
    parser.add_argument("--max-unavailable", type=float, default=60.0,
                        help="seconds a SIGKILL'd daemon may stay down "
                             "before the campaign fails (default: 60)")
    parser.add_argument("--quick", action="store_true",
                        help="in-process transport scenarios only "
                             "(conn-reset, latency) with a smaller burst "
                             "— the CI schema gate")
    parser.add_argument("--out", default=None,
                        help="also write the versioned report JSON "
                             "(byte-identical across same-seed reruns)")


def run_chaos_serve_command(ns: argparse.Namespace) -> int:
    from .chaos import (
        run_serve_chaos,
        validate_serve_chaos_report_dict,
        write_serve_chaos_report_json,
    )

    scenarios = tuple(ns.scenarios) if ns.scenarios else None
    n_requests = ns.requests
    if ns.quick:
        scenarios = scenarios or ("conn-reset", "latency")
        n_requests = min(n_requests, 4)
    kwargs = {"n_requests": n_requests, "seed": ns.seed,
              "retries": ns.retries,
              "max_unavailable": ns.max_unavailable}
    if scenarios is not None:
        kwargs["scenarios"] = scenarios
    try:
        report, notes, gates = run_serve_chaos(**kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for note in notes:
        print(f"[chaos-serve] {note}", file=sys.stderr)
    for gate in gates:
        print(f"[chaos-serve] GATE FAILED: {gate}", file=sys.stderr)
    validate_serve_chaos_report_dict(report.to_dict())
    print(report.render())
    if ns.out:
        out = Path(ns.out)
        if out.parent and not out.parent.exists():
            out.parent.mkdir(parents=True, exist_ok=True)
        write_serve_chaos_report_json(report, out)
        print(f"[report -> {out}]", file=sys.stderr)
    ns.serve_summary = report.to_dict()["summary"]
    return 0 if report.all_ok and not gates else 1


def run_serve_command(ns: argparse.Namespace) -> int:
    if getattr(ns, "supervise", False):
        return _run_supervised(ns)

    from ..session import Session
    from .broker import BrokerConfig, RequestBroker
    from .journal import RequestJournal
    from .server import MAX_BODY_BYTES, ServeDaemon

    try:
        config = BrokerConfig(max_queue_depth=ns.queue_depth,
                              workers=ns.serve_workers,
                              result_cache_size=ns.result_cache_size,
                              default_deadline_seconds=ns.deadline,
                              retries=ns.retries)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    journal = RequestJournal.in_dir(ns.journal_dir) \
        if ns.journal_dir else None
    session = Session(jobs=ns.jobs, persistent=True,
                      max_tasks_per_worker=ns.max_tasks_per_worker)
    broker = RequestBroker(session=session, config=config, journal=journal)
    try:
        daemon = ServeDaemon(
            ns.host, ns.port, broker=broker,
            install_signal_handlers=True, verbose=ns.verbose,
            max_body_bytes=ns.max_body_bytes if ns.max_body_bytes
            is not None else MAX_BODY_BYTES)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    daemon.start()
    print(f"[serve] listening on {daemon.address} "
          f"(queue depth {config.max_queue_depth}, "
          f"{config.workers} executor(s)); SIGTERM or POST /shutdown "
          f"to stop", flush=True)
    if journal is not None:
        jc = broker.journal_counts
        print(f"[serve] journal {journal.path}: {jc['restored']} "
              f"restored response(s) on startup", flush=True)
    daemon.wait()
    drained = daemon.drained
    print(f"[serve] stopped ({'drained' if drained else 'drain timed out'}); "
          f"{broker.summary()}", flush=True)
    # surfaced into the run-ledger record by the entry point
    summary = dict(broker.counts)
    if journal is not None:
        summary["journal"] = dict(broker.journal_counts)
    ns.serve_summary = summary
    return 0 if drained else 1


def _free_port(host: str) -> int:
    """Pre-pick a free port once so a supervised daemon keeps the same
    address across restarts (``--port 0`` would re-roll per child)."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, 0))
        return sock.getsockname()[1]


def _child_argv(ns: argparse.Namespace, port: int) -> list[str]:
    """The daemon child's command line: this serve invocation minus
    ``--supervise``, with the resolved port pinned."""
    argv = [sys.executable, "-m", "repro.experiments", "serve",
            "--host", ns.host, "--port", str(port),
            "--queue-depth", str(ns.queue_depth),
            "--serve-workers", str(ns.serve_workers),
            "--result-cache-size", str(ns.result_cache_size),
            "--retries", str(ns.retries)]
    if ns.deadline is not None:
        argv += ["--deadline", str(ns.deadline)]
    if ns.jobs is not None:
        argv += ["--jobs", str(ns.jobs)]
    if ns.max_tasks_per_worker is not None:
        argv += ["--max-tasks-per-worker", str(ns.max_tasks_per_worker)]
    if ns.max_body_bytes is not None:
        argv += ["--max-body-bytes", str(ns.max_body_bytes)]
    if ns.journal_dir:
        argv += ["--journal-dir", ns.journal_dir]
    if ns.verbose:
        argv += ["--verbose"]
    return argv


def _run_supervised(ns: argparse.Namespace) -> int:
    from .resilience import Supervisor, SupervisorConfig

    port = ns.port if ns.port else _free_port(ns.host)
    argv = _child_argv(ns, port)
    if not ns.journal_dir:
        print("[supervise] note: no --journal-dir; a restarted daemon "
              "starts cold (no request replay)", flush=True)

    def spawn() -> subprocess.Popen:
        return subprocess.Popen(argv)

    config = SupervisorConfig(max_restarts=ns.max_restarts,
                              hang_timeout=ns.hang_timeout)
    supervisor = Supervisor(spawn, ns.host, port, config)
    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, lambda *_: supervisor.request_stop())
    print(f"[supervise] daemon on {ns.host}:{port}; restart on crash or "
          f"hang (SIGTERM to stop)", flush=True)
    code = supervisor.run()
    ns.serve_summary = {"supervised": True, "restarts": supervisor.restarts,
                        "crashes": supervisor.crashes,
                        "hangs": supervisor.hangs}
    return code


def run_submit_command(ns: argparse.Namespace) -> int:
    from .client import ServeClient

    if ns.path == "-":
        source = sys.stdin.read()
    else:
        path = Path(ns.path)
        if not path.exists():
            print(f"error: no such loop source file: {path}",
                  file=sys.stderr)
            return 2
        source = path.read_text(encoding="utf-8")
    try:
        request = ServeRequest(kind=ns.kind, source=source, cores=ns.cores,
                               unroll=ns.unroll, iterations=ns.iterations,
                               seed=ns.seed, policy=ns.policy,
                               deadline_seconds=ns.deadline)
        client = ServeClient.from_address(ns.server, timeout=ns.timeout)
        outcome = client.submit(request, raise_on_reject=False,
                                retries=ns.retries, hedge_after=ns.hedge)
    except ProtocolError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ServerUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_UNAVAILABLE
    except AdmissionRejected as exc:  # pragma: no cover — raise_on_reject off
        print(f"rejected: {exc.reason}", file=sys.stderr)
        return EXIT_REJECTED

    if ns.json_out:
        out = Path(ns.json_out)
        if out.parent and not out.parent.exists():
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(outcome.body + b"\n")
        print(f"[response -> {out}]", file=sys.stderr)

    response = outcome.response
    if outcome.status == "rejected":
        print(f"rejected: {response.get('reason', 'unknown')} "
              f"(request {response.get('request_id', '?')})",
              file=sys.stderr)
        return EXIT_REJECTED
    if outcome.status != "ok":
        print(f"error: {response.get('error', 'unknown server error')}",
              file=sys.stderr)
        return EXIT_ERROR
    if not ns.quiet:
        _print_summary(response, outcome.served, outcome.attempts)
    return EXIT_OK


def _print_summary(response: dict, served: str, attempts: int = 1) -> None:
    result = response.get("result", {})
    retried = f", {attempts} attempts" if attempts > 1 else ""
    print(f"request {response['request_id']} (served: {served}{retried})")
    if result.get("kind") == "compile":
        algs = result.get("algorithms", {})
        line = ", ".join(f"{name}: II={alg['ii']} C_delay={alg['c_delay']} "
                         f"max_live={alg['max_live']}"
                         for name, alg in sorted(algs.items()))
        print(f"{result.get('loop', '?')}: {result.get('n_inst', '?')} inst, "
              f"MII={result.get('mii', '?')}; {line}")
    elif result.get("kind") == "simulate":
        stats = result.get("stats", {})
        print(f"{result.get('loop', '?')} [{result.get('policy', '?')}]: "
              f"II={result.get('ii', '?')} "
              f"C_delay={result.get('c_delay', '?')}; "
              f"{stats.get('total_cycles', '?')} cycles / "
              f"{stats.get('iterations', '?')} iterations "
              f"({stats.get('cycles_per_iteration', 0):.2f} cyc/iter, "
              f"misspec {100 * stats.get('misspec_frequency', 0.0):.3f}%)")
    else:  # pragma: no cover — future kinds
        print(json.dumps(result, sort_keys=True, indent=2))
