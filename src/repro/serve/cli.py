"""``tms-experiments serve`` / ``tms-experiments submit``.

``serve`` runs the daemon in the foreground until SIGTERM/SIGINT or an
in-band ``/shutdown``, then prints the request tally; its run-ledger
record (appended by :func:`repro.experiments.runner.main`) carries the
same tally in ``extra``.  ``submit`` sends one request to a running
daemon and exits with a typed code (:data:`~repro.serve.protocol.
EXIT_OK` / ``EXIT_ERROR`` / ``EXIT_REJECTED`` / ``EXIT_UNAVAILABLE``)
so shell pipelines and CI can branch on the outcome.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..errors import AdmissionRejected, ProtocolError, ServerUnavailable
from .protocol import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REJECTED,
    EXIT_UNAVAILABLE,
    KINDS,
    POLICIES,
    ServeRequest,
)

__all__ = ["add_serve_arguments", "add_submit_arguments",
           "run_serve_command", "run_submit_command"]

DEFAULT_PORT = 8437


def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"bind port; 0 picks a free one "
                             f"(default: {DEFAULT_PORT})")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="max distinct in-flight jobs before "
                             "queue_full rejections (default: 64)")
    parser.add_argument("--serve-workers", type=int, default=1,
                        help="broker executor threads (default: 1, "
                             "strictly FIFO)")
    parser.add_argument("--result-cache-size", type=int, default=512,
                        help="completed responses kept for identical "
                             "future requests (default: 512)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="default per-request deadline in seconds "
                             "(requests may carry their own)")
    parser.add_argument("--retries", type=int, default=0,
                        help="retry waves for transient worker crashes "
                             "(default: 0)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes in the warm pool "
                             "(default: $REPRO_JOBS or sequential)")
    parser.add_argument("--max-tasks-per-worker", type=int, default=None,
                        help="recycle the worker pool after this many "
                             "tasks per worker (hygiene for long-lived "
                             "daemons)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every HTTP request")


def add_submit_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("path", help="loop source file (repro.ir.dsl "
                                     "syntax), or - for stdin")
    parser.add_argument("--server", default=f"127.0.0.1:{DEFAULT_PORT}",
                        help=f"daemon address host:port (default: "
                             f"127.0.0.1:{DEFAULT_PORT})")
    parser.add_argument("--kind", choices=KINDS, default="simulate",
                        help="unit of work (default: simulate)")
    parser.add_argument("--cores", type=int, default=4)
    parser.add_argument("--unroll", type=int, default=1,
                        help="unroll factor (thread granularity)")
    parser.add_argument("--iterations", type=int, default=500,
                        help="simulated trip count (simulate)")
    parser.add_argument("--seed", type=int, default=0xACE5,
                        help="simulator seed (simulate)")
    parser.add_argument("--policy", choices=POLICIES, default="tms",
                        help="kernel to simulate (default: tms)")
    parser.add_argument("--deadline", type=float, default=None,
                        help="per-request deadline in seconds")
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="client-side HTTP timeout (default: 300)")
    parser.add_argument("--json", dest="json_out", default=None,
                        help="also write the raw response JSON to a file")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the human-readable summary")


def run_serve_command(ns: argparse.Namespace) -> int:
    from ..session import Session
    from .broker import BrokerConfig, RequestBroker
    from .server import ServeDaemon

    try:
        config = BrokerConfig(max_queue_depth=ns.queue_depth,
                              workers=ns.serve_workers,
                              result_cache_size=ns.result_cache_size,
                              default_deadline_seconds=ns.deadline,
                              retries=ns.retries)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    session = Session(jobs=ns.jobs, persistent=True,
                      max_tasks_per_worker=ns.max_tasks_per_worker)
    broker = RequestBroker(session=session, config=config)
    daemon = ServeDaemon(ns.host, ns.port, broker=broker,
                         install_signal_handlers=True,
                         verbose=ns.verbose)
    daemon.start()
    print(f"[serve] listening on {daemon.address} "
          f"(queue depth {config.max_queue_depth}, "
          f"{config.workers} executor(s)); SIGTERM or POST /shutdown "
          f"to stop", flush=True)
    daemon.wait()
    drained = daemon.drained
    print(f"[serve] stopped ({'drained' if drained else 'drain timed out'}); "
          f"{broker.summary()}", flush=True)
    # surfaced into the run-ledger record by the entry point
    ns.serve_summary = dict(broker.counts)
    return 0 if drained else 1


def run_submit_command(ns: argparse.Namespace) -> int:
    from .client import ServeClient

    if ns.path == "-":
        source = sys.stdin.read()
    else:
        path = Path(ns.path)
        if not path.exists():
            print(f"error: no such loop source file: {path}",
                  file=sys.stderr)
            return 2
        source = path.read_text(encoding="utf-8")
    try:
        request = ServeRequest(kind=ns.kind, source=source, cores=ns.cores,
                               unroll=ns.unroll, iterations=ns.iterations,
                               seed=ns.seed, policy=ns.policy,
                               deadline_seconds=ns.deadline)
        client = ServeClient.from_address(ns.server, timeout=ns.timeout)
        outcome = client.submit(request, raise_on_reject=False)
    except ProtocolError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ServerUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_UNAVAILABLE
    except AdmissionRejected as exc:  # pragma: no cover — raise_on_reject off
        print(f"rejected: {exc.reason}", file=sys.stderr)
        return EXIT_REJECTED

    if ns.json_out:
        out = Path(ns.json_out)
        if out.parent and not out.parent.exists():
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_bytes(outcome.body + b"\n")
        print(f"[response -> {out}]", file=sys.stderr)

    response = outcome.response
    if outcome.status == "rejected":
        print(f"rejected: {response.get('reason', 'unknown')} "
              f"(request {response.get('request_id', '?')})",
              file=sys.stderr)
        return EXIT_REJECTED
    if outcome.status != "ok":
        print(f"error: {response.get('error', 'unknown server error')}",
              file=sys.stderr)
        return EXIT_ERROR
    if not ns.quiet:
        _print_summary(response, outcome.served)
    return EXIT_OK


def _print_summary(response: dict, served: str) -> None:
    result = response.get("result", {})
    print(f"request {response['request_id']} (served: {served})")
    if result.get("kind") == "compile":
        algs = result.get("algorithms", {})
        line = ", ".join(f"{name}: II={alg['ii']} C_delay={alg['c_delay']} "
                         f"max_live={alg['max_live']}"
                         for name, alg in sorted(algs.items()))
        print(f"{result.get('loop', '?')}: {result.get('n_inst', '?')} inst, "
              f"MII={result.get('mii', '?')}; {line}")
    elif result.get("kind") == "simulate":
        stats = result.get("stats", {})
        print(f"{result.get('loop', '?')} [{result.get('policy', '?')}]: "
              f"II={result.get('ii', '?')} "
              f"C_delay={result.get('c_delay', '?')}; "
              f"{stats.get('total_cycles', '?')} cycles / "
              f"{stats.get('iterations', '?')} iterations "
              f"({stats.get('cycles_per_iteration', 0):.2f} cyc/iter, "
              f"misspec {100 * stats.get('misspec_frequency', 0.0):.3f}%)")
    else:  # pragma: no cover — future kinds
        print(json.dumps(result, sort_keys=True, indent=2))
