"""Self-healing building blocks for the serve layer.

Four pieces, each usable alone:

:class:`BackoffPolicy`
    Capped exponential backoff with seeded jitter — deterministic per
    ``(seed, attempt)``, so retry schedules replay identically in tests
    and chaos campaigns.  Shared by the client's retry waves, the
    readiness poller (:func:`repro.serve.client.wait_ready`) and the
    supervisor's restart pacing.

:class:`CircuitBreaker`
    The classic closed → open → half-open machine guarding one
    endpoint.  After ``failure_threshold`` consecutive transport
    failures the breaker *opens*: further calls fail locally with a
    typed :class:`~repro.errors.CircuitOpen` (fast, no socket) until
    ``reset_timeout`` admits one half-open probe; a probe success closes
    the breaker, a probe failure re-opens it.

:class:`HealthPolicy` / :class:`HealthReport`
    The daemon-side health state machine: ``ok → degraded → draining``
    driven by queue-depth pressure, recent worker-pool rebuilds and the
    recent deadline-miss rate.  The broker consults it on every
    admission (execution-distressed degradation sheds
    coalescible-duplicate load first) and ``GET /healthz`` surfaces it
    to clients, supervisors and CI.

:class:`Supervisor`
    A parent process that forks the serve daemon, watches liveness via
    ``/healthz`` heartbeats, and restarts it on crash or hang with
    capped exponential backoff (``serve.restarts`` /
    ``serve.supervisor.*`` metrics).  Combined with the request journal
    (:mod:`repro.serve.journal`) a SIGKILL'd daemon comes back, replays
    incomplete work into the warm cache, and retrying clients complete
    with byte-identical responses.
"""

from __future__ import annotations

import random
import subprocess
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import CircuitOpen
from ..obs import metrics

__all__ = [
    "BackoffPolicy",
    "CircuitBreaker",
    "HEALTH_DEGRADED",
    "HEALTH_DRAINING",
    "HEALTH_OK",
    "HEALTH_STATES",
    "HealthPolicy",
    "HealthReport",
    "Supervisor",
    "SupervisorConfig",
]


# -- backoff -------------------------------------------------------------------

@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with seeded jitter.

    ``delay(attempt)`` is ``initial * factor**attempt`` capped at
    ``max_delay``, multiplied by a jitter factor drawn deterministically
    from ``(seed, attempt)`` in ``[1 - jitter/2, 1 + jitter/2)`` — the
    same idiom as :meth:`repro.session.runner.ParallelRunner.map`'s
    retry waves, so every layer of the stack backs off the same way and
    chaos campaigns replay identically per seed.
    """

    initial: float = 0.05     #: delay of attempt 0, seconds
    factor: float = 2.0       #: exponential growth per attempt
    max_delay: float = 5.0    #: cap on the un-jittered delay
    jitter: float = 0.5       #: total jitter band (0 = none)
    seed: int = 0             #: jitter seed (deterministic per attempt)

    def __post_init__(self) -> None:
        if self.initial <= 0:
            raise ValueError(f"initial must be > 0, got {self.initial}")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.max_delay < self.initial:
            raise ValueError(f"max_delay must be >= initial, "
                             f"got {self.max_delay} < {self.initial}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """The pause before retry ``attempt`` (0-based), jittered."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        base = min(self.initial * self.factor ** attempt, self.max_delay)
        if not self.jitter:
            return base
        # deterministic per (seed, attempt): replays are byte-identical
        draw = random.Random(self.seed * 1000003 + attempt).random()
        return base * (1.0 + self.jitter * (draw - 0.5))

    def sleep(self, attempt: int) -> float:
        """Sleep for ``delay(attempt)``; returns the slept seconds."""
        pause = self.delay(attempt)
        time.sleep(pause)
        return pause


# -- circuit breaker -----------------------------------------------------------

class CircuitBreaker:
    """Closed → open → half-open breaker for one endpoint.

    Thread-safe.  ``guard()`` raises :class:`~repro.errors.CircuitOpen`
    while the breaker is open; callers report outcomes with
    :meth:`record_success` / :meth:`record_failure`.  Only *transport*
    failures should be recorded — a daemon answering with a typed
    rejection is alive, and must close the breaker, not open it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, endpoint: str = "", *, failure_threshold: int = 5,
                 reset_timeout: float = 2.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, "
                             f"got {failure_threshold}")
        if reset_timeout <= 0:
            raise ValueError(f"reset_timeout must be > 0, "
                             f"got {reset_timeout}")
        self.endpoint = endpoint
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def guard(self) -> None:
        """Admit one call or raise :class:`CircuitOpen`.

        In the half-open window exactly one probe call is admitted;
        concurrent callers keep failing fast until the probe reports.
        """
        with self._lock:
            if self._state == self.CLOSED:
                return
            now = self._clock()
            remaining = self._opened_at + self.reset_timeout - now
            if self._state == self.OPEN and remaining <= 0:
                self._state = self.HALF_OPEN
                self._probing = False
            if self._state == self.HALF_OPEN and not self._probing:
                self._probing = True        # this caller is the probe
                return
            raise CircuitOpen(self.endpoint or "endpoint",
                              max(remaining, 0.0))

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == self.HALF_OPEN \
                    or self._failures >= self.failure_threshold:
                if self._state != self.OPEN:
                    metrics.counter(
                        "serve.client.circuit_opens",
                        "circuit breakers tripped open").inc()
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probing = False


# -- health state machine --------------------------------------------------------

HEALTH_OK = "ok"               #: admitting everything
HEALTH_DEGRADED = "degraded"   #: distressed; may shed duplicate load
HEALTH_DRAINING = "draining"   #: graceful shutdown, rejecting new work

#: The daemon's health states, in degradation order.
HEALTH_STATES = (HEALTH_OK, HEALTH_DEGRADED, HEALTH_DRAINING)


@dataclass(frozen=True)
class HealthReport:
    """One health probe's verdict: the state plus why.

    ``shed_duplicates`` is the broker's load-shedding hint: set only
    when degradation is driven by *execution* distress (worker-pool
    rebuilds, deadline misses) — then every coalesce waiter is a
    handler thread wedged behind a sick executor, and shedding it with
    a retryable rejection is cheaper for everyone.  Pure queue-depth
    pressure does NOT shed: a coalesced duplicate costs no queue slot
    and no work, and ``queue_full`` backpressure already guards
    admissions.
    """

    state: str
    reasons: tuple[str, ...] = ()
    shed_duplicates: bool = False

    @property
    def ok(self) -> bool:
        return self.state == HEALTH_OK

    def to_dict(self) -> dict:
        return {"state": self.state, "reasons": list(self.reasons),
                "shed_duplicates": self.shed_duplicates}


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds driving ``ok → degraded`` (draining is commanded, not
    inferred).  A broker is *degraded* when any input trips:

    * queue depth at or above ``queue_fraction`` of the admission bound;
    * any worker-pool rebuild within the last ``window`` executed jobs
      (the warm pool just lost state — execution is about to be slow);
    * the deadline-miss rate over the last ``window`` executed jobs at
      or above ``deadline_miss_rate``.
    """

    queue_fraction: float = 0.75
    deadline_miss_rate: float = 0.5
    window: int = 32
    min_samples: int = 4   #: deadline-rate needs this many recent jobs

    def __post_init__(self) -> None:
        if not 0.0 < self.queue_fraction <= 1.0:
            raise ValueError(f"queue_fraction must be in (0, 1], "
                             f"got {self.queue_fraction}")
        if not 0.0 < self.deadline_miss_rate <= 1.0:
            raise ValueError(f"deadline_miss_rate must be in (0, 1], "
                             f"got {self.deadline_miss_rate}")
        if self.window < 1:
            raise ValueError(f"window must be >= 1, got {self.window}")
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, "
                             f"got {self.min_samples}")

    def evaluate(self, *, draining: bool, queue_depth: int,
                 max_queue_depth: int,
                 recent_outcomes: Sequence[str],
                 pool_rebuilds_in_window: int) -> HealthReport:
        """Fold the broker's live inputs into a :class:`HealthReport`."""
        if draining:
            return HealthReport(HEALTH_DRAINING, ("drain requested",),
                                shed_duplicates=True)
        reasons: list[str] = []
        shed = False
        threshold = max(1, int(self.queue_fraction * max_queue_depth))
        if queue_depth >= threshold:
            reasons.append(f"queue depth {queue_depth} >= {threshold} "
                           f"({self.queue_fraction:.0%} of "
                           f"{max_queue_depth})")
        if pool_rebuilds_in_window > 0:
            reasons.append(f"{pool_rebuilds_in_window} worker-pool "
                           f"rebuild(s) in the last {self.window} jobs")
            shed = True
        recent = list(recent_outcomes)[-self.window:]
        if len(recent) >= self.min_samples:
            misses = sum(1 for o in recent if o == "deadline")
            rate = misses / len(recent)
            if rate >= self.deadline_miss_rate:
                reasons.append(f"deadline-miss rate {rate:.0%} over the "
                               f"last {len(recent)} jobs")
                shed = True
        if reasons:
            return HealthReport(HEALTH_DEGRADED, tuple(reasons),
                                shed_duplicates=shed)
        return HealthReport(HEALTH_OK)


# -- supervisor ------------------------------------------------------------------

@dataclass(frozen=True)
class SupervisorConfig:
    """Liveness and restart knobs of one :class:`Supervisor`."""

    #: seconds between liveness probes of a running child
    check_interval: float = 0.25
    #: a spawned child must answer ``/healthz`` within this budget
    startup_timeout: float = 60.0
    #: a live process that stops answering ``/healthz`` for this long is
    #: declared hung, killed, and restarted
    hang_timeout: float = 15.0
    #: restart pacing (capped exponential, seeded jitter)
    backoff: BackoffPolicy = field(
        default_factory=lambda: BackoffPolicy(initial=0.25, max_delay=10.0))
    #: give up after this many restarts (None = never give up)
    max_restarts: int | None = None
    #: a child healthy for this long resets the backoff attempt counter
    healthy_reset_seconds: float = 30.0


class Supervisor:
    """Fork the serve daemon, watch it, restart it when it misbehaves.

    ``spawn`` launches one daemon child and returns its
    ``subprocess.Popen``; the supervisor probes ``http://host:port/healthz``
    through a :class:`~repro.serve.client.ServeClient`.  Crashes (child
    exited uncommanded) and hangs (alive but silent past
    ``hang_timeout``) both trigger a restart after the backoff pause.

    :meth:`run` blocks until :meth:`request_stop` (or a forwarded
    SIGTERM/SIGINT when ``install_signal_handlers``) stops the child
    gracefully, or the restart budget is exhausted.
    """

    def __init__(self, spawn: Callable[[], subprocess.Popen], host: str,
                 port: int, config: SupervisorConfig | None = None, *,
                 verbose: bool = True) -> None:
        self._spawn = spawn
        self.host = host
        self.port = port
        self.config = config or SupervisorConfig()
        self.verbose = verbose
        self.child: subprocess.Popen | None = None
        self.restarts = 0
        self.crashes = 0
        self.hangs = 0
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # -- plumbing -----------------------------------------------------------

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[supervise] {message}", flush=True)

    def _client(self):
        from .client import ServeClient
        return ServeClient(self.host, self.port, timeout=5.0)

    def request_stop(self) -> None:
        """Ask the supervise loop to stop the child and return
        (idempotent, safe from signal handlers and other threads)."""
        self._stop.set()

    @property
    def child_pid(self) -> int | None:
        with self._lock:
            return self.child.pid if self.child is not None else None

    # -- lifecycle ----------------------------------------------------------

    def _start_child(self) -> bool:
        """Spawn one child and wait for readiness.  Returns whether it
        came up within ``startup_timeout``."""
        from .client import wait_ready
        with self._lock:
            self.child = self._spawn()
        self._log(f"child pid {self.child.pid} spawned; waiting for "
                  f"/healthz on {self.host}:{self.port}")
        ready = wait_ready(self._client(),
                           timeout=self.config.startup_timeout)
        if not ready and self.child.poll() is None:
            self._log("child never became ready; killing it")
            self._kill_child()
        return ready

    def _kill_child(self) -> None:
        with self._lock:
            child = self.child
        if child is None or child.poll() is not None:
            return
        child.kill()
        try:
            child.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover — kernel lag
            pass

    def _terminate_child(self) -> None:
        """Graceful stop: SIGTERM (the daemon drains), escalate to kill."""
        with self._lock:
            child = self.child
        if child is None or child.poll() is not None:
            return
        child.terminate()
        try:
            child.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            self._log("child ignored SIGTERM; killing it")
            self._kill_child()

    # -- the watch loop -------------------------------------------------------

    def run(self) -> int:
        """Supervise until stopped.  Returns 0 on a commanded stop, 1
        when the restart budget was exhausted."""
        attempt = 0
        while not self._stop.is_set():
            if self._start_child():
                self._watch_child()
                if self._last_healthy_span \
                        >= self.config.healthy_reset_seconds:
                    # a long-healthy child failing is a fresh incident,
                    # not an escalation of the previous crash loop
                    attempt = 0
            if self._stop.is_set():
                break
            # the child is gone (crash/hang kill) or never came up
            if self.config.max_restarts is not None \
                    and self.restarts >= self.config.max_restarts:
                self._log(f"restart budget exhausted "
                          f"({self.config.max_restarts}); giving up")
                return 1
            pause = self.config.backoff.delay(attempt)
            self._log(f"restarting in {pause:.2f}s "
                      f"(attempt {attempt}, restart #{self.restarts + 1})")
            metrics.histogram(
                "serve.supervisor.backoff_seconds",
                "restart backoff pauses").observe(pause)
            self._interruptible_sleep(pause)
            if self._stop.is_set():
                break
            self.restarts += 1
            metrics.counter("serve.restarts",
                            "daemon restarts by the supervisor").inc()
            metrics.counter("serve.supervisor.restarts",
                            "daemon restarts by the supervisor").inc()
            attempt += 1
        self._terminate_child()
        self._log(f"stopped after {self.restarts} restart(s)")
        return 0

    #: how long the last watched child stayed alive (crash-loop detector)
    _last_healthy_span: float = 0.0

    def _watch_child(self) -> None:
        """Probe one running child until it crashes, hangs, or we are
        asked to stop."""
        client = self._client()
        started = time.monotonic()
        last_heartbeat = time.monotonic()
        while not self._stop.is_set():
            with self._lock:
                child = self.child
            code = child.poll() if child is not None else None
            if code is not None:
                self.crashes += 1
                self._last_healthy_span = time.monotonic() - started
                metrics.counter("serve.supervisor.crashes",
                                "children that exited uncommanded").inc()
                self._log(f"child exited with code {code} (crash)")
                return
            metrics.counter("serve.supervisor.checks",
                            "liveness probes").inc()
            if client.ping():
                last_heartbeat = time.monotonic()
            elif time.monotonic() - last_heartbeat \
                    >= self.config.hang_timeout:
                self.hangs += 1
                self._last_healthy_span = time.monotonic() - started
                metrics.counter(
                    "serve.supervisor.hangs",
                    "children killed after missing heartbeats").inc()
                self._log(f"no heartbeat for "
                          f"{self.config.hang_timeout:.1f}s; killing "
                          f"hung child")
                self._kill_child()
                return
            self._interruptible_sleep(self.config.check_interval)
        self._last_healthy_span = time.monotonic() - started

    def _interruptible_sleep(self, seconds: float) -> None:
        self._stop.wait(timeout=seconds)
