"""Long-running compile/simulate service (``tms-experiments serve``).

A zero-dependency daemon over the process :class:`~repro.session.
session.Session`: identical concurrent requests coalesce onto one
in-flight computation, a persistent warm worker pool answers repeat
work without process-spawn or recompile cost, and bounded admission
control turns overload into typed rejections instead of queue
collapse.  See ``docs/serving.md``.

Layers (each importable alone):

- :mod:`~repro.serve.protocol` — wire schema, fingerprints, exit codes
- :mod:`~repro.serve.broker` — coalescing, admission control, execution
- :mod:`~repro.serve.server` — stdlib HTTP front end + signal handling
- :mod:`~repro.serve.client` — client library (``http.client``)
- :mod:`~repro.serve.cli` — ``serve`` / ``submit`` subcommands
"""

from .broker import BrokerConfig, RequestBroker, execute_request
from .client import ServeClient, SubmitOutcome, wait_ready
from .protocol import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REJECTED,
    EXIT_UNAVAILABLE,
    PROTOCOL_VERSION,
    ServeRequest,
    response_bytes,
)
from .server import ServeDaemon

__all__ = [
    "BrokerConfig",
    "EXIT_ERROR",
    "EXIT_OK",
    "EXIT_REJECTED",
    "EXIT_UNAVAILABLE",
    "PROTOCOL_VERSION",
    "RequestBroker",
    "ServeClient",
    "ServeDaemon",
    "ServeRequest",
    "SubmitOutcome",
    "execute_request",
    "response_bytes",
    "wait_ready",
]
