"""Long-running compile/simulate service (``tms-experiments serve``).

A zero-dependency daemon over the process :class:`~repro.session.
session.Session`: identical concurrent requests coalesce onto one
in-flight computation, a persistent warm worker pool answers repeat
work without process-spawn or recompile cost, and bounded admission
control turns overload into typed rejections instead of queue
collapse.  The self-healing layer wraps it: a supervisor restarts a
crashed or hung daemon, a write-ahead request journal replays
incomplete work after the restart, a health state machine sheds load
before collapse, and the hardened client retries with backoff behind a
circuit breaker.  See ``docs/serving.md``.

Layers (each importable alone):

- :mod:`~repro.serve.protocol` — wire schema, fingerprints, exit codes
- :mod:`~repro.serve.broker` — coalescing, admission control, execution
- :mod:`~repro.serve.journal` — crash-safe request WAL + replay
- :mod:`~repro.serve.resilience` — backoff, circuit breaker, health
  machine, supervisor
- :mod:`~repro.serve.server` — stdlib HTTP front end + signal handling
- :mod:`~repro.serve.client` — hardened client library (``http.client``)
- :mod:`~repro.serve.chaos` — seeded chaos campaigns against the stack
- :mod:`~repro.serve.cli` — ``serve`` / ``submit`` / ``chaos-serve``
  subcommands
"""

from .broker import BrokerConfig, RequestBroker, execute_request
from .client import ServeClient, SubmitOutcome, wait_ready
from .journal import JournalReplay, RequestJournal, read_journal
from .protocol import (
    EXIT_ERROR,
    EXIT_OK,
    EXIT_REJECTED,
    EXIT_UNAVAILABLE,
    PROTOCOL_VERSION,
    ServeRequest,
    response_bytes,
)
from .resilience import (
    HEALTH_STATES,
    BackoffPolicy,
    CircuitBreaker,
    HealthPolicy,
    HealthReport,
    Supervisor,
    SupervisorConfig,
)
from .server import ServeDaemon

__all__ = [
    "BackoffPolicy",
    "BrokerConfig",
    "CircuitBreaker",
    "EXIT_ERROR",
    "EXIT_OK",
    "EXIT_REJECTED",
    "EXIT_UNAVAILABLE",
    "HEALTH_STATES",
    "HealthPolicy",
    "HealthReport",
    "JournalReplay",
    "PROTOCOL_VERSION",
    "RequestBroker",
    "RequestJournal",
    "ServeClient",
    "ServeDaemon",
    "ServeRequest",
    "SubmitOutcome",
    "Supervisor",
    "SupervisorConfig",
    "execute_request",
    "read_journal",
    "response_bytes",
    "wait_ready",
]
