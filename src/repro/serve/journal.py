"""The crash-safe request journal: a write-ahead log for the broker.

Admission control without durability loses work on a crash: a SIGKILL'd
daemon forgets every admitted-but-unfinished job, and the clients
holding open connections learn nothing except "connection reset".  The
journal closes that gap with the same discipline as the run ledger
(:mod:`repro.obs.ledger`), whose fsync'd atomic-append primitive it
shares:

* **admitted** records are appended *before* a job is queued for
  execution — one line, one ``O_APPEND`` write, fsync'd;
* **completed** records are appended after the response is known;
  ``ok`` completions carry the full response so a restart can restore
  the result cache without recomputing.

On startup the broker replays the journal (:func:`read_journal`):
completed ``ok`` responses are *restored* straight into the warm result
cache, admitted-without-completed requests are *recovered* by
re-executing them (warming the :class:`~repro.session.cache.
ArtifactCache` so the retrying client's resubmission is a cache hit),
and entries that cannot be replayed (malformed after truncation,
unparseable requests, failing re-execution) are *abandoned* — all three
counts are surfaced in ``/stats`` under ``journal``.  After replay the
journal is compacted: live completed records are rewritten through an
atomic tempfile-and-rename, everything else is dropped.

Journal records are versioned (:data:`JOURNAL_SCHEMA_VERSION`); reading
skips corrupt or foreign-version lines instead of raising — a damaged
journal degrades to a smaller recovery, it never stops the daemon from
starting.
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..obs import metrics
from ..obs.ledger import append_jsonl_line

__all__ = [
    "JOURNAL_FILENAME",
    "JOURNAL_SCHEMA_VERSION",
    "JournalReplay",
    "RequestJournal",
    "read_journal",
]

#: default file name inside a journal directory
JOURNAL_FILENAME = "journal.jsonl"

#: bumped on incompatible journal record changes; foreign versions are
#: skipped on read (never replayed into a build that can't trust them)
JOURNAL_SCHEMA_VERSION = 1


@dataclass
class JournalReplay:
    """Everything one journal scan found."""

    #: fingerprint → canonical ``ok`` response (restorable cache entries)
    completed: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: fingerprint → request wire payload, admitted but never completed
    incomplete: dict[str, dict[str, Any]] = field(default_factory=dict)
    records: int = 0   #: well-formed records seen
    corrupt: int = 0   #: truncated / malformed / foreign-version lines


def read_journal(path: str | os.PathLike) -> JournalReplay:
    """Scan a journal file into a :class:`JournalReplay`.

    Corrupt lines — the truncated tail a SIGKILL'd writer leaves, or
    records from another schema version — are counted and skipped.  A
    missing file reads as empty (a fresh daemon).
    """
    replay = JournalReplay()
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
    except FileNotFoundError:
        return replay
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("record must be an object")
            if record.get("schema_version") != JOURNAL_SCHEMA_VERSION:
                raise ValueError("foreign schema version")
            kind = record["kind"]
            fingerprint = record["fingerprint"]
            if not isinstance(fingerprint, str) or not fingerprint:
                raise ValueError("missing fingerprint")
            if kind == "admitted":
                request = record["request"]
                if not isinstance(request, dict):
                    raise ValueError("admitted record missing request")
            elif kind == "completed":
                if record.get("status") == "ok" \
                        and not isinstance(record.get("response"), dict):
                    raise ValueError("ok completion missing response")
            else:
                raise ValueError(f"unknown record kind {kind!r}")
        except (KeyError, ValueError, TypeError):
            replay.corrupt += 1
            continue
        replay.records += 1
        if kind == "admitted":
            replay.incomplete[fingerprint] = record["request"]
        else:
            replay.incomplete.pop(fingerprint, None)
            if record.get("status") == "ok":
                replay.completed[fingerprint] = record["response"]
    return replay


class RequestJournal:
    """Append-only WAL for one broker (thread-safe).

    Filesystem failures degrade: the first append error prints one
    warning and disables the journal for the rest of the process —
    durability is lost, serving is not (the same never-break-a-run rule
    as the ledger).
    """

    def __init__(self, path: str | os.PathLike, *,
                 fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self.enabled = True
        self._lock = threading.Lock()
        self.appends = 0
        self.append_errors = 0

    @classmethod
    def in_dir(cls, directory: str | os.PathLike, *,
               fsync: bool = True) -> "RequestJournal":
        """The conventional journal inside ``directory`` (created)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        return cls(directory / JOURNAL_FILENAME, fsync=fsync)

    # -- writes ---------------------------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        if not self.enabled:
            return
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            try:
                append_jsonl_line(self.path, line, fsync=self.fsync)
            except OSError as exc:
                self.append_errors += 1
                self.enabled = False
                print(f"warning: request journal disabled "
                      f"({self.path}: {exc})", file=sys.stderr)
                return
            self.appends += 1
        metrics.counter("serve.journal.appends",
                        "journal records appended").inc()

    def admitted(self, fingerprint: str,
                 request_payload: Mapping[str, Any]) -> None:
        """Log one admission — call *before* queueing the job."""
        self._append({
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "kind": "admitted",
            "fingerprint": fingerprint,
            "request": dict(request_payload),
        })

    def completed(self, fingerprint: str, status: str,
                  response: Mapping[str, Any] | None = None) -> None:
        """Log one completion.  ``ok`` completions carry the response
        (restorable); other statuses just close the admitted entry."""
        record: dict[str, Any] = {
            "schema_version": JOURNAL_SCHEMA_VERSION,
            "kind": "completed",
            "fingerprint": fingerprint,
            "status": status,
        }
        if status == "ok" and response is not None:
            record["response"] = dict(response)
        self._append(record)

    # -- maintenance -----------------------------------------------------------

    def compact(self, live: Mapping[str, Mapping[str, Any]]) -> None:
        """Rewrite the journal to exactly the live completed records
        (atomic tempfile-and-rename; crash-safe at every step)."""
        if not self.enabled:
            return
        with self._lock:
            try:
                fd, tmp = tempfile.mkstemp(
                    dir=str(self.path.parent),
                    prefix=self.path.name + ".", suffix=".tmp")
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    for fingerprint in sorted(live):
                        fh.write(json.dumps({
                            "schema_version": JOURNAL_SCHEMA_VERSION,
                            "kind": "completed",
                            "fingerprint": fingerprint,
                            "status": "ok",
                            "response": dict(live[fingerprint]),
                        }, sort_keys=True, separators=(",", ":")) + "\n")
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except OSError as exc:
                self.append_errors += 1
                print(f"warning: could not compact request journal "
                      f"{self.path}: {exc}", file=sys.stderr)

    def stats_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "enabled": self.enabled,
                "path": str(self.path),
                "appends": self.appends,
                "append_errors": self.append_errors,
            }
