"""The serve wire protocol: JSON requests, responses, and exit codes.

One :class:`ServeRequest` names a unit of compiler work — ``compile`` a
DSL loop, or ``simulate`` one of its scheduled kernels on the SpMT
machine — plus the knobs that determine the result (cores, unroll,
iterations, seed, policy).  Everything that shapes the *result* feeds
the request's :meth:`~ServeRequest.fingerprint` (which also embeds
``repro.__version__``), so two structurally identical requests hash
equal and the broker can coalesce them onto one in-flight computation;
quality-of-service fields (``deadline_seconds``) deliberately do *not*,
because they change when a caller gives up, never what is computed.

Responses are plain dicts rendered with :func:`response_bytes`
(canonical, sorted-key JSON), so every waiter of a coalesced job — and a
warm rerun served from the result cache — receives byte-identical bytes.
``request_id`` is a deterministic function of the request (a fingerprint
prefix), not of arrival order, so retried and replayed submissions are
idempotent.

The result payload builders (:func:`compile_result_dict`,
:func:`simulate_result_dict`, :func:`simstats_to_dict`) define the
response schema in one place: the broker's execution path and the
serve-vs-direct equivalence tests both render through them.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, Mapping

from ..errors import ProtocolError

__all__ = [
    "EXIT_ERROR",
    "EXIT_OK",
    "EXIT_REJECTED",
    "EXIT_UNAVAILABLE",
    "KINDS",
    "PROTOCOL_VERSION",
    "REJECT_REASONS",
    "RETRYABLE_REJECT_REASONS",
    "ServeRequest",
    "compile_result_dict",
    "error_response",
    "ok_response",
    "rejected_response",
    "response_bytes",
    "simstats_to_dict",
    "simulate_result_dict",
]

#: Bumped on incompatible request/response schema changes; every
#: response carries it.
PROTOCOL_VERSION = 1

#: Request kinds the broker executes.
KINDS = ("compile", "simulate")

#: Admission-control rejection reasons (``response["reason"]``).
#: ``shed`` is the degraded-health rejection: a coalescible duplicate of
#: in-flight work, shed first under pressure because the original
#: computation still completes and a retry lands in the result cache.
REJECT_REASONS = ("queue_full", "deadline", "draining", "shed")

#: Rejection reasons a hardened client may transparently retry: the
#: condition is transient and the request was never executed.
RETRYABLE_REJECT_REASONS = ("queue_full", "draining", "shed")

#: Scheduling policies a ``simulate`` request may name (the compiled
#: artifact carries one kernel per policy).
POLICIES = ("sms", "tms")

# -- typed exit codes for ``tms-experiments submit`` -------------------------
# (3 is taken by ``report --check``'s EXIT_REGRESSION.)
EXIT_OK = 0            #: request accepted and answered
EXIT_ERROR = 1         #: server executed the request and it failed
EXIT_REJECTED = 4      #: admission control refused the request
EXIT_UNAVAILABLE = 5   #: no server reachable at the given address


@dataclass(frozen=True)
class ServeRequest:
    """One unit of compile/simulate work, as submitted over the wire."""

    kind: str                            #: ``compile`` or ``simulate``
    source: str                          #: DSL loop text (:mod:`repro.ir.dsl`)
    cores: int = 4                       #: SpMT cores (``ArchConfig.with_cores``)
    unroll: int = 1                      #: unroll factor (thread granularity)
    iterations: int = 500                #: simulated trip count (simulate)
    seed: int = 0xACE5                   #: simulator seed (simulate)
    policy: str = "tms"                  #: kernel to simulate (sms / tms)
    #: wall-clock budget from admission to response; expiry is a typed
    #: ``deadline`` rejection.  Not part of the fingerprint.
    deadline_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ProtocolError(
                f"unknown request kind {self.kind!r}; expected one of "
                f"{', '.join(KINDS)}")
        if not isinstance(self.source, str) or not self.source.strip():
            raise ProtocolError("request 'source' must be non-empty DSL text")
        for name in ("cores", "unroll", "iterations", "seed"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ProtocolError(f"request {name!r} must be an integer, "
                                    f"got {type(value).__name__}")
        if self.cores < 1:
            raise ProtocolError(f"request 'cores' must be >= 1, "
                                f"got {self.cores}")
        if self.unroll < 1:
            raise ProtocolError(f"request 'unroll' must be >= 1, "
                                f"got {self.unroll}")
        if self.iterations < 1:
            raise ProtocolError(f"request 'iterations' must be >= 1, "
                                f"got {self.iterations}")
        if self.policy not in POLICIES:
            raise ProtocolError(
                f"unknown policy {self.policy!r}; expected one of "
                f"{', '.join(POLICIES)}")
        if self.deadline_seconds is not None:
            if not isinstance(self.deadline_seconds, (int, float)) \
                    or isinstance(self.deadline_seconds, bool) \
                    or self.deadline_seconds <= 0:
                raise ProtocolError(
                    f"request 'deadline_seconds' must be a positive number "
                    f"or null, got {self.deadline_seconds!r}")

    # -- identity ------------------------------------------------------------

    def work_payload(self) -> dict[str, Any]:
        """The fields that determine the result (QoS knobs excluded;
        simulation knobs excluded for ``compile`` requests, whose result
        they cannot change — so two compiles differing only in
        ``iterations`` still coalesce)."""
        payload: dict[str, Any] = {
            "kind": self.kind,
            "source": self.source,
            "cores": self.cores,
            "unroll": self.unroll,
        }
        if self.kind == "simulate":
            payload.update(iterations=self.iterations, seed=self.seed,
                           policy=self.policy)
        return payload

    def fingerprint(self) -> str:
        """Stable identity of the *work* this request names; identical
        concurrent requests coalesce on it.  Embeds the library version
        so responses are never shared across builds."""
        from .. import __version__
        from ..session.fingerprint import fingerprint

        return fingerprint({
            "version": __version__,
            "kind": "serve-request",
            "request": self.work_payload(),
        })

    def request_id(self) -> str:
        """Deterministic per-request id (a fingerprint prefix): the same
        request replayed or retried gets the same id."""
        return f"r-{self.fingerprint()[:16]}"

    # -- wire format ---------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {f.name: getattr(self, f.name)
                             for f in fields(self)}
        if d["deadline_seconds"] is None:
            del d["deadline_seconds"]
        return d

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeRequest":
        """Parse and validate a wire payload; raises
        :class:`~repro.errors.ProtocolError` on anything malformed."""
        if not isinstance(data, Mapping):
            raise ProtocolError(
                f"request body must be a JSON object, got "
                f"{type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ProtocolError(
                f"unknown request field(s): {', '.join(unknown)}")
        if "kind" not in data:
            raise ProtocolError("request is missing 'kind'")
        if "source" not in data:
            raise ProtocolError("request is missing 'source'")
        return cls(**{k: data[k] for k in data})


# -- responses ---------------------------------------------------------------

def _base_response(request: ServeRequest, status: str) -> dict[str, Any]:
    return {
        "protocol_version": PROTOCOL_VERSION,
        "status": status,
        "request_id": request.request_id(),
        "fingerprint": request.fingerprint(),
        "kind": request.kind,
    }


def ok_response(request: ServeRequest, result: dict[str, Any]
                ) -> dict[str, Any]:
    """A completed request's response envelope."""
    response = _base_response(request, "ok")
    response["result"] = result
    return response


def rejected_response(request: ServeRequest, reason: str) -> dict[str, Any]:
    """An admission-control rejection (``reason`` in
    :data:`REJECT_REASONS`)."""
    if reason not in REJECT_REASONS:
        raise ProtocolError(f"unknown rejection reason {reason!r}")
    response = _base_response(request, "rejected")
    response["reason"] = reason
    return response


def error_response(request: ServeRequest, message: str) -> dict[str, Any]:
    """The request executed and failed (a scheduling error, malformed
    DSL, ...)."""
    response = _base_response(request, "error")
    response["error"] = message
    return response


def response_bytes(response: Mapping[str, Any]) -> bytes:
    """Canonical wire rendering: sorted keys, no whitespace, UTF-8 —
    coalesced waiters and cache hits all receive these exact bytes."""
    return json.dumps(response, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


# -- result payload builders -------------------------------------------------

def simstats_to_dict(stats: Any) -> dict[str, Any]:
    """A :class:`~repro.spmt.stats.SimStats` as deterministic JSON-able
    data (per-thread trace records excluded)."""
    return {
        "iterations": stats.iterations,
        "ncore": stats.ncore,
        "total_cycles": stats.total_cycles,
        "sync_stall_cycles": stats.sync_stall_cycles,
        "send_recv_pairs": stats.send_recv_pairs,
        "misspeculations": stats.misspeculations,
        "squashed_threads": stats.squashed_threads,
        "invalidation_cycles": stats.invalidation_cycles,
        "wasted_execution_cycles": stats.wasted_execution_cycles,
        "spawn_cycles": stats.spawn_cycles,
        "commit_cycles": stats.commit_cycles,
        "reg_comm_latency": stats.reg_comm_latency,
        "cycles_per_iteration": stats.cycles_per_iteration,
        "misspec_frequency": stats.misspec_frequency,
        "communication_overhead": stats.communication_overhead,
    }


def _alg_dict(alg: Any) -> dict[str, Any]:
    return {
        "ii": alg.ii,
        "stages": alg.schedule.num_stages,
        "c_delay": alg.c_delay,
        "max_live": alg.max_live,
        "kernel": alg.schedule.kernel_listing(),
    }


def compile_result_dict(compiled: Any) -> dict[str, Any]:
    """The ``compile`` result payload for one
    :class:`~repro.experiments.pipeline.CompiledLoop` (schedules
    rendered as kernel listings, so equivalence is byte-checkable)."""
    return {
        "kind": "compile",
        "loop": compiled.name,
        "n_inst": compiled.n_inst,
        "mii": compiled.mii,
        "ldp": compiled.ldp,
        "n_scc": compiled.n_scc,
        "algorithms": {"sms": _alg_dict(compiled.sms),
                       "tms": _alg_dict(compiled.tms)},
    }


def simulate_result_dict(compiled: Any, policy: str, alg: Any,
                         stats: Any) -> dict[str, Any]:
    """The ``simulate`` result payload: the simulated kernel's identity
    plus its :class:`~repro.spmt.stats.SimStats`."""
    return {
        "kind": "simulate",
        "loop": compiled.name,
        "policy": policy,
        "ii": alg.ii,
        "c_delay": alg.c_delay,
        "kernel": alg.schedule.kernel_listing(),
        "stats": simstats_to_dict(stats),
    }
