"""Client library for the serve daemon (stdlib ``http.client`` only).

:class:`ServeClient` speaks the JSON protocol of
:mod:`repro.serve.protocol` against a running daemon.  Connection
errors become :class:`~repro.errors.ServerUnavailable`; admission
rejections become :class:`~repro.errors.AdmissionRejected` (or, with
``raise_on_reject=False``, a normal :class:`SubmitOutcome` the caller
inspects).  One connection is opened per call — the daemon's threading
server is connection-per-request, and serve requests are long relative
to TCP setup.

The hardened paths (see docs/serving.md):

* :meth:`ServeClient.submit` takes ``retries`` — transport failures and
  *retryable* typed rejections (:data:`~repro.serve.protocol.
  RETRYABLE_REJECT_REASONS`: the daemon never executed the request) are
  retried with capped exponential backoff and seeded jitter
  (:class:`~repro.serve.resilience.BackoffPolicy`), so retry schedules
  replay identically per seed.  A ``deadline`` rejection or an executed
  error is never retried — the daemon answered.
* An optional :class:`~repro.serve.resilience.CircuitBreaker` guards
  the transport: after enough consecutive connection failures the
  client fails fast with a typed :class:`~repro.errors.CircuitOpen`
  instead of hammering a dead address; retry waves respect the
  breaker's pacing (they sleep at least ``retry_after``) so the
  half-open probe goes through.
* ``hedge_after`` arms a hedged read: if the first ``/submit`` hasn't
  answered within the given seconds, an identical second request is
  launched and the first usable answer wins.  This is safe because the
  daemon coalesces identical in-flight work — the hedge adopts the same
  computation — and idempotent because ``request_id`` is a fingerprint
  prefix.
"""

from __future__ import annotations

import http.client
import json
import queue
import socket
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Mapping

from ..errors import (
    AdmissionRejected,
    CircuitOpen,
    ProtocolError,
    ServerUnavailable,
)
from ..obs import metrics
from .protocol import RETRYABLE_REJECT_REASONS, ServeRequest
from .resilience import BackoffPolicy, CircuitBreaker

__all__ = ["ServeClient", "SubmitOutcome", "wait_ready"]


@dataclass(frozen=True)
class SubmitOutcome:
    """Everything one ``/submit`` round trip produced."""

    response: dict[str, Any]   #: decoded response envelope
    body: bytes                #: exact response bytes off the wire
    served: str                #: ``X-Repro-Served``: computed/coalesced/cached/rejected
    http_status: int
    attempts: int = 1          #: round trips this submission took (retries + 1)

    @property
    def status(self) -> str:
        return self.response.get("status", "error")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def result(self) -> dict[str, Any] | None:
        return self.response.get("result")


class ServeClient:
    """A thin, connection-per-call client for one daemon address.

    ``circuit_breaker=True`` builds a default
    :class:`~repro.serve.resilience.CircuitBreaker` for the address;
    pass a pre-built breaker to share one across clients or tune its
    thresholds.  Without one (the default) every call goes to the wire.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8437, *,
                 timeout: float | None = 300.0,
                 circuit_breaker: "CircuitBreaker | bool | None" = None
                 ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        if circuit_breaker is True:
            circuit_breaker = CircuitBreaker(f"{host}:{port}")
        self.breaker: CircuitBreaker | None = circuit_breaker or None

    @classmethod
    def from_address(cls, address: str, *,
                     timeout: float | None = 300.0,
                     circuit_breaker: "CircuitBreaker | bool | None" = None
                     ) -> "ServeClient":
        """Parse ``host:port`` (or bare ``:port`` / ``port``)."""
        host, _, port = address.rpartition(":")
        try:
            return cls(host or "127.0.0.1", int(port), timeout=timeout,
                       circuit_breaker=circuit_breaker)
        except ValueError:
            raise ServerUnavailable(
                f"malformed server address {address!r}; expected host:port"
            ) from None

    # -- transport -----------------------------------------------------------

    def _round_trip(self, method: str, path: str,
                    body: bytes | None = None
                    ) -> tuple[int, dict[str, str], bytes]:
        if self.breaker is not None:
            self.breaker.guard()
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            payload = resp.read()
        except (ConnectionError, socket.timeout, socket.gaierror,
                http.client.HTTPException, OSError) as exc:
            # only transport failures trip the breaker — a daemon
            # answering anything (even a rejection) is alive
            if self.breaker is not None:
                self.breaker.record_failure()
            raise ServerUnavailable(
                f"no serve daemon reachable at {self.host}:{self.port} "
                f"({type(exc).__name__}: {exc})") from exc
        finally:
            conn.close()
        if self.breaker is not None:
            self.breaker.record_success()
        return resp.status, {k.lower(): v for k, v in
                             resp.getheaders()}, payload

    def _json(self, status: int, body: bytes) -> dict[str, Any]:
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                f"server returned non-JSON body (HTTP {status}): "
                f"{body[:200]!r}") from exc
        if not isinstance(decoded, dict):
            raise ProtocolError(
                f"server returned non-object JSON (HTTP {status})")
        return decoded

    # -- API -----------------------------------------------------------------

    def submit(self, request: "ServeRequest | Mapping[str, Any]", *,
               raise_on_reject: bool = True, retries: int = 0,
               backoff: BackoffPolicy | None = None,
               hedge_after: float | None = None) -> SubmitOutcome:
        """Submit one request and block for its response.

        ``retries`` extra round trips are attempted after transport
        failures (:class:`ServerUnavailable`, :class:`CircuitOpen`) and
        retryable typed rejections, paced by ``backoff`` (a default
        :class:`BackoffPolicy` when omitted).  ``hedge_after`` arms a
        hedged second request per round trip.  Admission rejections
        that survive the retry budget raise :class:`AdmissionRejected`
        carrying the typed reason, unless ``raise_on_reject=False``;
        transport failures that survive it re-raise.
        """
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if isinstance(request, ServeRequest):
            payload = request.to_dict()
        else:
            payload = dict(request)
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        policy = backoff or BackoffPolicy()
        last_exc: Exception | None = None
        outcome: SubmitOutcome | None = None
        for attempt in range(retries + 1):
            if attempt:
                pause = policy.delay(attempt - 1)
                if isinstance(last_exc, CircuitOpen):
                    # let the breaker reach half-open so the retry is
                    # the probe instead of another local fast-fail
                    pause = max(pause, last_exc.retry_after)
                metrics.counter("serve.client.retries",
                                "submit retry round trips").inc()
                time.sleep(pause)
            try:
                outcome = self._submit_once(body, hedge_after=hedge_after)
            except (ServerUnavailable, CircuitOpen) as exc:
                last_exc = exc
                outcome = None
                continue
            last_exc = None
            if outcome.status == "rejected" \
                    and outcome.response.get("reason") \
                    in RETRYABLE_REJECT_REASONS \
                    and attempt < retries:
                continue
            break
        if outcome is None:
            assert last_exc is not None
            raise last_exc
        outcome = replace(outcome, attempts=attempt + 1)
        if outcome.status == "rejected" and raise_on_reject:
            raise AdmissionRejected(outcome.response.get("reason",
                                                         "unknown"))
        return outcome

    def _submit_once(self, body: bytes, *,
                     hedge_after: float | None = None) -> SubmitOutcome:
        if hedge_after is not None:
            return self._submit_hedged(body, hedge_after)
        return self._decode_submit(*self._round_trip("POST", "/submit",
                                                     body))

    def _submit_hedged(self, body: bytes,
                       hedge_after: float) -> SubmitOutcome:
        """One round trip with a hedge: if the primary hasn't answered
        within ``hedge_after`` seconds, race an identical second request
        and take the first usable answer (safe: the daemon coalesces
        identical in-flight work, so the hedge adopts the same
        computation and receives byte-identical response bytes)."""
        results: "queue.SimpleQueue[tuple[str, Any]]" = queue.SimpleQueue()

        def attempt_request() -> None:
            try:
                results.put(("ok", self._decode_submit(
                    *self._round_trip("POST", "/submit", body))))
            except Exception as exc:  # noqa: BLE001 — reraised by the winner
                results.put(("err", exc))

        threading.Thread(target=attempt_request, daemon=True).start()
        launched = 1
        try:
            kind, value = results.get(timeout=hedge_after)
        except queue.Empty:
            metrics.counter("serve.client.hedges",
                            "hedged second requests launched").inc()
            threading.Thread(target=attempt_request, daemon=True).start()
            launched = 2
            kind, value = results.get()
        first_error = value if kind == "err" else None
        while kind == "err" and launched > 1:
            # the fastest answer failed; the slower twin may still win
            launched -= 1
            kind, value = results.get()
        if kind == "err":
            raise first_error if first_error is not None else value
        return value

    def _decode_submit(self, status: int, headers: dict[str, str],
                       raw: bytes) -> SubmitOutcome:
        response = self._json(status, raw)
        if status in (400, 413):
            raise ProtocolError(response.get("error",
                                             f"bad request (HTTP {status})"))
        return SubmitOutcome(response=response, body=raw,
                             served=headers.get("x-repro-served",
                                                "unknown"),
                             http_status=status)

    def stats(self) -> dict[str, Any]:
        status, _, raw = self._round_trip("GET", "/stats")
        return self._json(status, raw)

    def healthz(self) -> dict[str, Any]:
        status, _, raw = self._round_trip("GET", "/healthz")
        return self._json(status, raw)

    def ping(self) -> bool:
        """Whether a daemon answers at the address."""
        try:
            return "status" in self.healthz()
        except (ServerUnavailable, CircuitOpen):
            return False

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to drain and stop."""
        status, _, raw = self._round_trip("POST", "/shutdown")
        return self._json(status, raw)


#: readiness-poll pacing: quick first probes, settling to ~1s — the
#: same curve the supervisor uses between probes of a starting child
_READY_BACKOFF = BackoffPolicy(initial=0.02, factor=1.6, max_delay=1.0)


def wait_ready(client: ServeClient, timeout: float = 30.0,
               backoff: BackoffPolicy | None = None) -> bool:
    """Poll ``/healthz`` until the daemon answers (startup races in
    tests, CI, and the supervisor); returns readiness within
    ``timeout``.

    Pacing is capped exponential backoff with seeded jitter
    (:class:`~repro.serve.resilience.BackoffPolicy`) instead of a fixed
    interval: early probes are fast enough not to penalise a warm
    start, late ones back off instead of spinning against a crash
    loop, and the jitter keeps herds of waiting clients from probing
    in lockstep.
    """
    policy = backoff or _READY_BACKOFF
    deadline = time.monotonic() + timeout
    attempt = 0
    while time.monotonic() < deadline:
        if client.ping():
            return True
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break
        time.sleep(min(policy.delay(attempt), remaining))
        attempt += 1
    return client.ping()
