"""Client library for the serve daemon (stdlib ``http.client`` only).

:class:`ServeClient` speaks the JSON protocol of
:mod:`repro.serve.protocol` against a running daemon.  Connection
errors become :class:`~repro.errors.ServerUnavailable`; admission
rejections become :class:`~repro.errors.AdmissionRejected` (or, with
``raise_on_reject=False``, a normal :class:`SubmitOutcome` the caller
inspects).  One connection is opened per call — the daemon's threading
server is connection-per-request, and serve requests are long relative
to TCP setup.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from dataclasses import dataclass
from typing import Any, Mapping

from ..errors import AdmissionRejected, ProtocolError, ServerUnavailable
from .protocol import ServeRequest

__all__ = ["ServeClient", "SubmitOutcome", "wait_ready"]


@dataclass(frozen=True)
class SubmitOutcome:
    """Everything one ``/submit`` round trip produced."""

    response: dict[str, Any]   #: decoded response envelope
    body: bytes                #: exact response bytes off the wire
    served: str                #: ``X-Repro-Served``: computed/coalesced/cached/rejected
    http_status: int

    @property
    def status(self) -> str:
        return self.response.get("status", "error")

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def result(self) -> dict[str, Any] | None:
        return self.response.get("result")


class ServeClient:
    """A thin, connection-per-call client for one daemon address."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8437, *,
                 timeout: float | None = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def from_address(cls, address: str, *,
                     timeout: float | None = 300.0) -> "ServeClient":
        """Parse ``host:port`` (or bare ``:port`` / ``port``)."""
        host, _, port = address.rpartition(":")
        try:
            return cls(host or "127.0.0.1", int(port), timeout=timeout)
        except ValueError:
            raise ServerUnavailable(
                f"malformed server address {address!r}; expected host:port"
            ) from None

    # -- transport -----------------------------------------------------------

    def _round_trip(self, method: str, path: str,
                    body: bytes | None = None
                    ) -> tuple[int, dict[str, str], bytes]:
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            resp = conn.getresponse()
            payload = resp.read()
            return resp.status, {k.lower(): v for k, v in
                                 resp.getheaders()}, payload
        except (ConnectionError, socket.timeout, socket.gaierror,
                http.client.HTTPException, OSError) as exc:
            raise ServerUnavailable(
                f"no serve daemon reachable at {self.host}:{self.port} "
                f"({type(exc).__name__}: {exc})") from exc
        finally:
            conn.close()

    def _json(self, status: int, body: bytes) -> dict[str, Any]:
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                f"server returned non-JSON body (HTTP {status}): "
                f"{body[:200]!r}") from exc
        if not isinstance(decoded, dict):
            raise ProtocolError(
                f"server returned non-object JSON (HTTP {status})")
        return decoded

    # -- API -----------------------------------------------------------------

    def submit(self, request: "ServeRequest | Mapping[str, Any]", *,
               raise_on_reject: bool = True) -> SubmitOutcome:
        """Submit one request and block for its response.

        Admission rejections raise :class:`AdmissionRejected` carrying
        the typed reason, unless ``raise_on_reject=False``.
        """
        if isinstance(request, ServeRequest):
            payload = request.to_dict()
        else:
            payload = dict(request)
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        status, headers, raw = self._round_trip("POST", "/submit", body)
        response = self._json(status, raw)
        if status == 400:
            raise ProtocolError(response.get("error",
                                             f"bad request (HTTP {status})"))
        outcome = SubmitOutcome(response=response, body=raw,
                                served=headers.get("x-repro-served",
                                                   "unknown"),
                                http_status=status)
        if outcome.status == "rejected" and raise_on_reject:
            raise AdmissionRejected(response.get("reason", "unknown"))
        return outcome

    def stats(self) -> dict[str, Any]:
        status, _, raw = self._round_trip("GET", "/stats")
        return self._json(status, raw)

    def healthz(self) -> dict[str, Any]:
        status, _, raw = self._round_trip("GET", "/healthz")
        return self._json(status, raw)

    def ping(self) -> bool:
        """Whether a daemon answers at the address."""
        try:
            return "status" in self.healthz()
        except ServerUnavailable:
            return False

    def shutdown(self) -> dict[str, Any]:
        """Ask the daemon to drain and stop."""
        status, _, raw = self._round_trip("POST", "/shutdown")
        return self._json(status, raw)


def wait_ready(client: ServeClient, timeout: float = 30.0,
               interval: float = 0.05) -> bool:
    """Poll ``/healthz`` until the daemon answers (startup races in
    tests and CI); returns readiness within ``timeout``."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if client.ping():
            return True
        time.sleep(interval)
    return client.ping()
