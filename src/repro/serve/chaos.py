"""Seeded chaos campaigns against the serve stack end to end.

``tms-experiments chaos-serve`` is the serving twin of
``tms-experiments chaos`` (:mod:`repro.faults.campaign`): instead of
injecting faults *inside* the simulator, it attacks the daemon's
process and transport while hardened clients keep submitting — and
asserts the two invariants the self-healing layer exists to provide:

* **zero wrong answers** — every completed response is byte-identical
  to the same request executed on a clean in-process
  :class:`~repro.session.session.Session` (the daemon and the reference
  share one execution path, :func:`~repro.serve.broker.
  execute_request`);
* **nothing is lost** — every request in the burst completes within its
  retry budget, across daemon kills, connection resets, injected
  latency and worker-pool breakage.

Scenarios (:data:`SERVE_SCENARIOS`):

``sigkill``
    A supervised daemon child (real subprocess, request journal on
    disk) is SIGKILL'd mid-burst; the supervisor restarts it, the
    journal replays incomplete work into the warm cache, and retrying
    clients complete.
``conn-reset``
    Submissions flow through a TCP proxy that hard-resets a seeded,
    *budgeted* subset of connections (``SO_LINGER 0``); client retry
    waves absorb every reset.
``latency``
    The proxy stalls seeded connections instead; hedged reads
    (``hedge_after``) race a second identical request past the stall —
    safe because the daemon coalesces identical in-flight work.
``pool-break``
    The daemon's warm worker pool is terminated mid-burst
    (the same breakage :mod:`repro.session.runner` heals with
    ``runner.pool_rebuilds``); broker-side retry waves re-execute on
    the rebuilt pool.

Determinism: request parameters, reset/stall choices, and client
backoff jitter are all derived from the campaign seed via
:func:`repro.faults.campaign.derive_seed`, and the versioned report
(:data:`SERVE_CHAOS_REPORT_SCHEMA`) contains only deterministic fields
— counts plus sorted ``(request_id, sha256(expected bytes))`` digests —
so same-seed reruns are byte-identical and CI can diff them.
Wall-clock observations (restart gaps, retry totals) go to stderr and
gate the exit code without entering the report.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import signal
import socket
import socketserver
import struct
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

from ..faults.campaign import derive_seed
from .broker import BrokerConfig, RequestBroker, execute_request
from .client import ServeClient, wait_ready
from .journal import RequestJournal
from .protocol import ServeRequest, ok_response, response_bytes
from .resilience import BackoffPolicy, Supervisor, SupervisorConfig

__all__ = [
    "SERVE_CHAOS_REPORT_SCHEMA",
    "SERVE_SCENARIOS",
    "ServeChaosReport",
    "ServeChaosRow",
    "build_requests",
    "run_serve_chaos",
    "validate_serve_chaos_report_dict",
    "write_serve_chaos_report_json",
]

#: Campaign scenarios, in execution order.
SERVE_SCENARIOS = ("conn-reset", "latency", "pool-break", "sigkill")

#: default campaign seed
DEFAULT_SEED = 0x5E12E

#: Schema version written into every serve-chaos report dict.
SCHEMA_VERSION = 1

#: Golden schema of :meth:`ServeChaosReport.to_dict` (the CI gate).
SERVE_CHAOS_REPORT_SCHEMA: dict[str, Any] = {
    "schema_version": int,
    "seed": int,
    "n_requests": int,
    "scenarios": list,
    "rows": {
        "scenario": str,
        "seed": int,
        "n_requests": int,
        "n_unique": int,
        "completed": int,
        "wrong_answers": int,
        "digests": list,
        "ok": bool,
    },
    "summary": {
        "n_scenarios": int,
        "total_requests": int,
        "total_completed": int,
        "wrong_answers": int,
        "all_ok": bool,
    },
}

#: DSL kernels the campaign's requests draw from — small enough that a
#: single request is cheap, different enough that fingerprints differ.
TEMPLATES: dict[str, str] = {
    "axpy": """
loop axpy
array X 64
array Y 64
livein a 2.0
n0: x = load X[i]
n1: t = fmul x, a
n2: y = load Y[i]
n3: r = fadd t, y
n4: store Y[i], r
""",
    "dotacc": """
loop dotacc
array A 64
array B 64
livein s 0.0
n0: x = load A[i]
n1: y = load B[i]
n2: p = fmul x, y
n3: s = fadd s, p
""",
    "smooth": """
loop smooth
array V 64
array W 64
n0: a = load V[i]
n1: b = load V[i+1]
n2: t = fadd a, b
n3: u = fmul t, 0.5
n4: store W[i], u
""",
}


# -- request generation -----------------------------------------------------

def build_requests(seed: int, scenario: str,
                   n: int) -> list[ServeRequest]:
    """``n`` seeded requests for one scenario: template kernels with
    varied knobs, every parameter a pure function of
    ``(seed, scenario, index)``."""
    names = sorted(TEMPLATES)
    requests = []
    for i in range(n):
        rng = random.Random(derive_seed(seed, scenario, f"request-{i}"))
        name = names[i % len(names)]
        kind = "compile" if rng.random() < 0.4 else "simulate"
        requests.append(ServeRequest(
            kind=kind,
            source=TEMPLATES[name],
            cores=rng.choice((2, 4)),
            unroll=rng.choice((1, 2)),
            iterations=100 + 50 * rng.randrange(3),
            seed=rng.randrange(1 << 16),
            policy=rng.choice(("sms", "tms")),
        ))
    return requests


def _expected_bytes(requests: Sequence[ServeRequest],
                    session) -> dict[str, bytes]:
    """fingerprint → the canonical response bytes a clean run produces
    (the wrong-answer reference; one execution per unique request)."""
    expected: dict[str, bytes] = {}
    for request in requests:
        fingerprint = request.fingerprint()
        if fingerprint in expected:
            continue
        result = execute_request(session, request)
        expected[fingerprint] = response_bytes(ok_response(request, result))
    return expected


# -- report data model --------------------------------------------------------

@dataclass(frozen=True)
class ServeChaosRow:
    """One scenario's deterministic outcome."""

    scenario: str
    seed: int                      #: the scenario's derived seed
    n_requests: int
    n_unique: int                  #: distinct work fingerprints in the burst
    completed: int                 #: requests that got an ok response
    wrong_answers: int             #: responses differing from the clean run
    #: sorted ``[request_id, sha256(expected bytes)]`` pairs — the
    #: byte-identity contract this scenario was checked against
    digests: tuple[tuple[str, str], ...] = ()

    @property
    def ok(self) -> bool:
        """Every request completed and none answered wrongly."""
        return self.completed == self.n_requests \
            and self.wrong_answers == 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "n_requests": self.n_requests,
            "n_unique": self.n_unique,
            "completed": self.completed,
            "wrong_answers": self.wrong_answers,
            "digests": [list(pair) for pair in self.digests],
            "ok": self.ok,
        }


@dataclass(frozen=True)
class ServeChaosReport:
    """All rows of one serve-chaos campaign plus its parameters."""

    rows: tuple[ServeChaosRow, ...]
    seed: int
    n_requests: int
    scenarios: tuple[str, ...]

    @property
    def all_ok(self) -> bool:
        return all(row.ok for row in self.rows)

    def to_dict(self) -> dict[str, Any]:
        """The stable, versioned report form
        (see :data:`SERVE_CHAOS_REPORT_SCHEMA`)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "seed": self.seed,
            "n_requests": self.n_requests,
            "scenarios": list(self.scenarios),
            "rows": [row.to_dict() for row in self.rows],
            "summary": {
                "n_scenarios": len(self.rows),
                "total_requests": sum(r.n_requests for r in self.rows),
                "total_completed": sum(r.completed for r in self.rows),
                "wrong_answers": sum(r.wrong_answers for r in self.rows),
                "all_ok": self.all_ok,
            },
        }

    def render(self) -> str:
        """Per-scenario outcome table plus the campaign verdict."""
        from ..experiments.report import format_table

        table = format_table(
            ["Scenario", "Requests", "Unique", "Completed", "Wrong",
             "Verdict"],
            [[r.scenario, r.n_requests, r.n_unique, r.completed,
              r.wrong_answers, "ok" if r.ok else "FAILED"]
             for r in self.rows],
            title="Serve chaos: process kills, transport faults, "
                  "hardened clients.")
        lines = [table, ""]
        if self.all_ok:
            lines.append("All requests completed with byte-identical "
                         "responses under fault injection.")
        else:
            for row in self.rows:
                if not row.ok:
                    lines.append(
                        f"FAILED {row.scenario}: "
                        f"{row.completed}/{row.n_requests} completed, "
                        f"{row.wrong_answers} wrong answer(s)")
        return "\n".join(lines)


def validate_serve_chaos_report_dict(data: dict[str, Any]) -> None:
    """Check ``data`` against :data:`SERVE_CHAOS_REPORT_SCHEMA`; raises
    ``ValueError`` on a missing key, mistyped value or unsupported
    schema version (the golden-schema gate in CI)."""
    def check(obj: dict, schema: dict, path: str) -> None:
        for key, expected in schema.items():
            if key not in obj:
                raise ValueError(f"report missing key {path}{key!r}")
            value = obj[key]
            if isinstance(expected, dict) and key == "rows":
                if not isinstance(value, list):
                    raise ValueError(f"{path}{key!r} must be a list")
                for i, row in enumerate(value):
                    if not isinstance(row, dict):
                        raise ValueError(f"{path}rows[{i}] must be an object")
                    check(row, expected, f"{path}rows[{i}].")
            elif isinstance(expected, dict):
                if not isinstance(value, dict):
                    raise ValueError(f"{path}{key!r} must be an object")
                check(value, expected, f"{path}{key}.")
            elif expected is bool:
                if not isinstance(value, bool):
                    raise ValueError(f"{path}{key!r} must be bool, got "
                                     f"{type(value).__name__}")
            elif not isinstance(value, expected) or isinstance(value, bool) \
                    and expected is int:
                raise ValueError(
                    f"{path}{key!r} must be {expected.__name__}, got "
                    f"{type(value).__name__}")
    if data.get("schema_version") != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema_version {data.get('schema_version')!r} "
            f"(expected {SCHEMA_VERSION})")
    check(data, SERVE_CHAOS_REPORT_SCHEMA, "")


def write_serve_chaos_report_json(report: ServeChaosReport,
                                  path: str | os.PathLike) -> None:
    """Persist the report's versioned dict form as pretty JSON
    (``sort_keys`` + the campaign's seeding = byte-identical reruns)."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")


# -- the resetting / stalling TCP proxy ----------------------------------------

class _ChaosProxy:
    """A TCP proxy in front of the daemon that misbehaves on purpose.

    Each accepted connection draws from a seed derived from its arrival
    ordinal, so *which* connections are attacked is deterministic per
    seed.  ``reset`` victims are closed with ``SO_LINGER 0`` (a hard
    RST, what a crashed peer looks like) — capped by ``max_faults`` so
    a bounded client retry budget always wins.  ``stall`` victims sleep
    before forwarding, modelling a wedged handler.
    """

    def __init__(self, upstream_host: str, upstream_port: int, *,
                 seed: int, mode: str, probability: float = 0.4,
                 max_faults: int = 4, stall_seconds: float = 1.0) -> None:
        assert mode in ("reset", "stall")
        self.upstream = (upstream_host, upstream_port)
        self.seed = seed
        self.mode = mode
        self.probability = probability
        self.max_faults = max_faults
        self.stall_seconds = stall_seconds
        self.faults = 0
        self._conn_ordinal = 0
        self._lock = threading.Lock()
        proxy = self

        class _Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:  # noqa: D102
                proxy._handle(self.request)

        class _Server(socketserver.ThreadingTCPServer):
            daemon_threads = True
            allow_reuse_address = True

        self._server = _Server(("127.0.0.1", 0), _Handler)
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="chaos-proxy", daemon=True)

    def start(self) -> "_ChaosProxy":
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()

    def _draw_fault(self) -> bool:
        with self._lock:
            ordinal = self._conn_ordinal
            self._conn_ordinal += 1
            if self.faults >= self.max_faults:
                return False
            rng = random.Random(derive_seed(self.seed, "proxy",
                                            f"conn-{ordinal}"))
            if rng.random() < self.probability:
                self.faults += 1
                return True
        return False

    def _handle(self, client_sock: socket.socket) -> None:
        if self._draw_fault():
            if self.mode == "reset":
                # SO_LINGER 0 turns close() into a hard RST — the
                # client sees exactly what a killed daemon produces
                client_sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0))
                client_sock.close()
                return
            time.sleep(self.stall_seconds)
        try:
            upstream = socket.create_connection(self.upstream, timeout=30.0)
        except OSError:
            client_sock.close()
            return
        t = threading.Thread(target=self._pipe,
                             args=(client_sock, upstream), daemon=True)
        t.start()
        self._pipe(upstream, client_sock)
        t.join(timeout=30.0)
        for sock in (client_sock, upstream):
            try:
                sock.close()
            except OSError:  # pragma: no cover — already closed
                pass

    @staticmethod
    def _pipe(src: socket.socket, dst: socket.socket) -> None:
        try:
            while True:
                data = src.recv(65536)
                if not data:
                    break
                dst.sendall(data)
        except OSError:
            pass
        finally:
            try:
                dst.shutdown(socket.SHUT_WR)
            except OSError:
                pass


# -- burst submission ----------------------------------------------------------

def _submit_burst(host: str, port: int, requests: Sequence[ServeRequest],
                  expected: dict[str, bytes], *, seed: int, retries: int,
                  hedge_after: float | None = None,
                  mid_burst: Callable[[], None] | None = None,
                  mid_burst_delay: float = 0.2,
                  timeout: float = 120.0) -> tuple[int, int, int]:
    """Fire every request concurrently through hardened clients and
    check each completed body against the clean-run reference.

    ``mid_burst`` (the scenario's sabotage) runs on its own thread
    ``mid_burst_delay`` seconds after the burst launches, while
    submissions are in flight.  Returns ``(completed, wrong, attempts)``
    where ``attempts`` is total round trips (a stderr-only
    observation).
    """
    results: list[bytes | None] = [None] * len(requests)
    attempts = [0] * len(requests)

    def submit_one(i: int, request: ServeRequest) -> None:
        client = ServeClient(host, port, timeout=timeout)
        backoff = BackoffPolicy(initial=0.05, max_delay=2.0,
                                seed=derive_seed(seed, "backoff", str(i)))
        try:
            outcome = client.submit(request, retries=retries,
                                    backoff=backoff,
                                    hedge_after=hedge_after,
                                    raise_on_reject=False)
        except Exception:  # noqa: BLE001 — an uncompleted request is the finding
            return
        attempts[i] = outcome.attempts
        if outcome.ok:
            results[i] = outcome.body

    threads = [threading.Thread(target=submit_one, args=(i, request),
                                daemon=True)
               for i, request in enumerate(requests)]
    for t in threads:
        t.start()
    saboteur = None
    if mid_burst is not None:
        def sabotage() -> None:
            time.sleep(mid_burst_delay)
            mid_burst()
        saboteur = threading.Thread(target=sabotage, daemon=True)
        saboteur.start()
    for t in threads:
        t.join(timeout=timeout)
    if saboteur is not None:
        saboteur.join(timeout=timeout)

    completed = sum(1 for body in results if body is not None)
    wrong = sum(1 for request, body in zip(requests, results)
                if body is not None
                and body != expected[request.fingerprint()])
    return completed, wrong, sum(attempts)


def _row(scenario: str, scenario_seed: int,
         requests: Sequence[ServeRequest], expected: dict[str, bytes],
         completed: int, wrong: int) -> ServeChaosRow:
    digests = tuple(sorted(
        (request.request_id(),
         hashlib.sha256(expected[request.fingerprint()]).hexdigest())
        for request in requests))
    return ServeChaosRow(scenario=scenario, seed=scenario_seed,
                         n_requests=len(requests),
                         n_unique=len({r.fingerprint() for r in requests}),
                         completed=completed, wrong_answers=wrong,
                         digests=digests)


# -- scenarios -------------------------------------------------------------------

def _inprocess_daemon(session=None, *, retries: int = 1,
                      journal: RequestJournal | None = None):
    """An in-process daemon for the transport scenarios (imported here
    to keep module import light)."""
    from .server import ServeDaemon

    config = BrokerConfig(retries=retries)
    broker = RequestBroker(session=session, config=config, journal=journal)
    return ServeDaemon("127.0.0.1", 0, broker=broker).start()


def _run_proxy_scenario(scenario: str, mode: str, *, seed: int,
                        n_requests: int, retries: int,
                        hedge_after: float | None,
                        clean_session, notes: list[str]) -> ServeChaosRow:
    scenario_seed = derive_seed(seed, "serve", scenario)
    requests = build_requests(seed, scenario, n_requests)
    expected = _expected_bytes(requests, clean_session)
    daemon = _inprocess_daemon()
    proxy = _ChaosProxy(daemon.host, daemon.port, seed=scenario_seed,
                        mode=mode).start()
    try:
        completed, wrong, attempts = _submit_burst(
            proxy.host, proxy.port, requests, expected,
            seed=scenario_seed, retries=retries, hedge_after=hedge_after)
    finally:
        proxy.stop()
        daemon.stop()
    notes.append(f"{scenario}: {proxy.faults} connection fault(s) "
                 f"injected, {attempts} round trip(s) total")
    return _row(scenario, scenario_seed, requests, expected,
                completed, wrong)


def _run_pool_break(*, seed: int, n_requests: int, retries: int,
                    clean_session, notes: list[str]) -> ServeChaosRow:
    from ..session import Session
    from ..session.runner import ParallelRunner

    scenario = "pool-break"
    scenario_seed = derive_seed(seed, "serve", scenario)
    requests = build_requests(seed, scenario, n_requests)
    expected = _expected_bytes(requests, clean_session)
    session = Session(jobs=2, persistent=True)
    daemon = _inprocess_daemon(session, retries=2)

    def break_pool() -> None:
        runner = session._runner
        pool = getattr(runner, "_pool", None) if runner is not None else None
        if pool is not None:
            ParallelRunner._terminate_workers(pool)
            notes.append(f"{scenario}: terminated the warm pool's workers "
                         f"mid-burst")
        else:  # pragma: no cover — burst finished before the sabotage
            notes.append(f"{scenario}: pool not yet spawned at sabotage "
                         f"time (nothing to break)")

    try:
        completed, wrong, attempts = _submit_burst(
            daemon.host, daemon.port, requests, expected,
            seed=scenario_seed, retries=retries, mid_burst=break_pool)
    finally:
        daemon.stop()
    notes.append(f"{scenario}: {attempts} round trip(s) total")
    return _row(scenario, scenario_seed, requests, expected,
                completed, wrong)


def _child_environment() -> dict[str, str]:
    """The daemon child's environment: ours, with the package's import
    root prepended so ``python -m repro.experiments`` resolves even when
    the package is used from a source tree rather than installed."""
    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = package_root + (os.pathsep + existing
                                        if existing else "")
    return env


def _run_sigkill(*, seed: int, n_requests: int, retries: int,
                 journal_dir: str | os.PathLike,
                 max_unavailable: float, clean_session,
                 notes: list[str], gates: list[str]) -> ServeChaosRow:
    scenario = "sigkill"
    scenario_seed = derive_seed(seed, "serve", scenario)
    requests = build_requests(seed, scenario, n_requests)
    expected = _expected_bytes(requests, clean_session)

    from .cli import _free_port
    port = _free_port("127.0.0.1")
    argv = [sys.executable, "-m", "repro.experiments", "serve",
            "--host", "127.0.0.1", "--port", str(port),
            "--retries", "1", "--journal-dir", str(journal_dir)]
    env = _child_environment()

    def spawn() -> subprocess.Popen:
        return subprocess.Popen(argv, env=env,
                                stdout=subprocess.DEVNULL,
                                stderr=subprocess.DEVNULL)

    supervisor = Supervisor(spawn, "127.0.0.1", port,
                            SupervisorConfig(hang_timeout=30.0),
                            verbose=False)
    supervisor_thread = threading.Thread(target=supervisor.run,
                                         name="chaos-supervisor",
                                         daemon=True)
    supervisor_thread.start()
    gap = None
    try:
        if not wait_ready(ServeClient("127.0.0.1", port, timeout=5.0),
                          timeout=90.0):
            raise RuntimeError("supervised daemon never became ready")

        def kill_child() -> None:
            nonlocal gap
            pid = supervisor.child_pid
            if pid is None:  # pragma: no cover — crashed before sabotage
                return
            killed_at = time.monotonic()
            os.kill(pid, signal.SIGKILL)
            if wait_ready(ServeClient("127.0.0.1", port, timeout=5.0),
                          timeout=max_unavailable):
                gap = time.monotonic() - killed_at

        completed, wrong, attempts = _submit_burst(
            "127.0.0.1", port, requests, expected,
            seed=scenario_seed, retries=retries,
            mid_burst=kill_child, mid_burst_delay=0.4)
    finally:
        supervisor.request_stop()
        supervisor_thread.join(timeout=60.0)
    if gap is None:
        gates.append(f"{scenario}: daemon NOT back within "
                     f"{max_unavailable:.0f}s of SIGKILL "
                     f"(unavailability bound violated)")
    else:
        notes.append(f"{scenario}: daemon back {gap:.2f}s after SIGKILL "
                     f"(bound {max_unavailable:.0f}s), "
                     f"{supervisor.restarts} restart(s), "
                     f"{attempts} round trip(s) total")
    return _row(scenario, scenario_seed, requests, expected,
                completed, wrong)


# -- the campaign ---------------------------------------------------------------

def run_serve_chaos(*, scenarios: Sequence[str] = SERVE_SCENARIOS,
                    n_requests: int = 6, seed: int = DEFAULT_SEED,
                    retries: int = 10, max_unavailable: float = 60.0,
                    journal_dir: str | os.PathLike | None = None
                    ) -> tuple[ServeChaosReport, list[str], list[str]]:
    """Run the serve-chaos campaign; returns
    ``(report, notes, gate_failures)``.

    The report holds only deterministic fields; ``notes`` are
    wall-clock observations (fault counts, restart gaps, retry totals)
    for stderr, and ``gate_failures`` are violated wall-clock bounds
    (e.g. the ``sigkill`` unavailability window) — they fail the
    campaign's exit code without entering the report.  ``journal_dir``
    defaults to a temporary directory (the ``sigkill`` scenario needs
    one on disk).
    """
    import tempfile

    from ..session import Session

    for s in scenarios:
        if s not in SERVE_SCENARIOS:
            raise ValueError(f"unknown serve-chaos scenario {s!r}; "
                             f"expected one of {SERVE_SCENARIOS}")
    notes: list[str] = []
    gates: list[str] = []
    rows: list[ServeChaosRow] = []
    with Session() as clean_session, \
            tempfile.TemporaryDirectory(prefix="chaos-serve-") as tmp:
        journal_root = Path(journal_dir) if journal_dir is not None \
            else Path(tmp)
        for scenario in scenarios:
            if scenario == "conn-reset":
                rows.append(_run_proxy_scenario(
                    scenario, "reset", seed=seed, n_requests=n_requests,
                    retries=retries, hedge_after=None,
                    clean_session=clean_session, notes=notes))
            elif scenario == "latency":
                rows.append(_run_proxy_scenario(
                    scenario, "stall", seed=seed, n_requests=n_requests,
                    retries=retries, hedge_after=0.25,
                    clean_session=clean_session, notes=notes))
            elif scenario == "pool-break":
                rows.append(_run_pool_break(
                    seed=seed, n_requests=n_requests, retries=retries,
                    clean_session=clean_session, notes=notes))
            else:
                rows.append(_run_sigkill(
                    seed=seed, n_requests=n_requests, retries=retries,
                    journal_dir=journal_root / "sigkill",
                    max_unavailable=max_unavailable,
                    clean_session=clean_session, notes=notes,
                    gates=gates))
    return ServeChaosReport(rows=tuple(rows), seed=seed,
                            n_requests=n_requests,
                            scenarios=tuple(scenarios)), notes, gates
