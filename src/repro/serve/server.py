"""The serve daemon: a stdlib HTTP front end over the request broker.

``ServeDaemon`` wraps :class:`~repro.serve.broker.RequestBroker` in a
:class:`http.server.ThreadingHTTPServer` (one handler thread per
connection; the broker coalesces and orders the actual work), speaking
the JSON protocol of :mod:`repro.serve.protocol`:

``POST /submit``
    Body: a :class:`~repro.serve.protocol.ServeRequest` payload.
    Answer: the canonical response bytes — byte-identical for every
    waiter of a coalesced job and for warm cache hits.  The
    ``X-Repro-Served`` header says how the response was produced
    (``computed`` / ``coalesced`` / ``cached`` / ``rejected``) without
    perturbing the body.
``GET /stats``
    The broker's live tallies, both cache tiers, session counters,
    health state and journal-replay counts.
``GET /healthz``
    The broker's :class:`~repro.serve.resilience.HealthReport` —
    ``{"status": "ok"|"degraded"|"draining", "reasons": [...]}`` — for
    clients, the supervisor's heartbeat probe, and CI.
``POST /shutdown``
    Graceful drain-and-stop, the in-band twin of SIGTERM.

Shutdown discipline: SIGTERM/SIGINT (and ``/shutdown``) first flip the
broker to *draining* — new submissions get typed ``draining``
rejections while in-flight jobs finish — then stop the HTTP listener
and release the warm worker pool.  The actual teardown runs on a
separate thread because ``HTTPServer.shutdown()`` deadlocks when
called from the ``serve_forever`` thread itself.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from ..errors import ProtocolError
from .broker import BrokerConfig, RequestBroker
from .protocol import PROTOCOL_VERSION, response_bytes

__all__ = ["MAX_BODY_BYTES", "ServeDaemon"]

#: default request body cap — a DSL loop is tiny; anything larger is
#: malformed (override per daemon with ``max_body_bytes``).
MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests into the daemon's broker."""

    # instances are created per-connection by the server; the daemon
    # hangs itself off the server object.
    server: "_Server"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    @property
    def daemon(self) -> "ServeDaemon":
        return self.server.daemon

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if self.daemon.verbose:
            self.daemon._log(f"{self.address_string()} {format % args}")

    def _send_json(self, status: int, payload: dict[str, Any],
                   headers: dict[str, str] | None = None) -> None:
        body = response_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _client_error(self, status: int, message: str) -> None:
        self._send_json(status, {"protocol_version": PROTOCOL_VERSION,
                                 "status": "error", "error": message})

    def _read_body(self) -> bytes | None:
        length = self.headers.get("Content-Length")
        try:
            n = int(length) if length is not None else 0
        except ValueError:
            self._client_error(400, "malformed Content-Length")
            return None
        if n <= 0:
            self._client_error(400, "request body required")
            return None
        cap = self.daemon.max_body_bytes
        if n > cap:
            # refused before a byte of the body is read: an oversized
            # declared length never ties up handler memory
            self._send_json(
                413, {"protocol_version": PROTOCOL_VERSION,
                      "status": "error",
                      "error": f"request body of {n} bytes exceeds the "
                               f"{cap}-byte limit"},
                {"X-Repro-Served": "rejected"})
            return None
        return self.rfile.read(n)

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            health = self.daemon.broker.health()
            self._send_json(200, {"status": health.state,
                                  "reasons": list(health.reasons),
                                  "protocol_version": PROTOCOL_VERSION})
        elif path == "/stats":
            self._send_json(200, self.daemon.broker.stats())
        else:
            self._client_error(404, f"unknown path {path!r}")

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path = self.path.split("?", 1)[0]
        if path == "/submit":
            self._do_submit()
        elif path == "/shutdown":
            self._send_json(200, {"status": "stopping",
                                  "protocol_version": PROTOCOL_VERSION})
            self.daemon.request_stop("shutdown request")
        else:
            self._client_error(404, f"unknown path {path!r}")

    def _do_submit(self) -> None:
        body = self._read_body()
        if body is None:
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._client_error(400, f"request body is not valid JSON: {exc}")
            return
        try:
            response, served = self.daemon.broker.submit(payload)
        except ProtocolError as exc:
            self._client_error(400, str(exc))
            return
        status = 200
        if response["status"] == "rejected":
            # backpressure maps onto 503 so generic clients retry later
            status = 503
        self._send_json(status, response, {"X-Repro-Served": served})


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    daemon: "ServeDaemon"


class ServeDaemon:
    """One serve daemon: broker + HTTP listener + signal handling.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks a free port (``self.port`` holds
        the real one after construction — handy for tests).
    broker:
        A pre-built broker, else one is created from ``config``.
    config:
        Broker knobs when ``broker`` is not given.
    install_signal_handlers:
        Wire SIGTERM/SIGINT to graceful drain (main thread only).
    verbose:
        Log per-request lines.
    max_body_bytes:
        Request body cap; larger declared bodies are refused with a
        typed HTTP 413 (``X-Repro-Served: rejected``) before any body
        byte is read.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 broker: RequestBroker | None = None,
                 config: BrokerConfig | None = None,
                 install_signal_handlers: bool = False,
                 verbose: bool = False,
                 max_body_bytes: int = MAX_BODY_BYTES) -> None:
        if max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, "
                             f"got {max_body_bytes}")
        self.broker = broker if broker is not None \
            else RequestBroker(config=config)
        self.verbose = verbose
        self.max_body_bytes = max_body_bytes
        self._httpd = _Server((host, port), _Handler)
        self._httpd.daemon = self
        self.host, self.port = self._httpd.server_address[:2]
        self._serve_thread: threading.Thread | None = None
        self._stop_thread: threading.Thread | None = None
        self._stop_lock = threading.Lock()
        self._stopped = threading.Event()
        self.drained: bool | None = None
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                signal.signal(sig, self._on_signal)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _log(self, message: str) -> None:
        print(f"[serve] {message}", flush=True)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServeDaemon":
        """Start the broker and the HTTP listener in the background."""
        self.broker.start()
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http", daemon=True)
        self._serve_thread.start()
        return self

    def _on_signal(self, signum: int, frame: Any) -> None:
        self.request_stop(signal.Signals(signum).name)

    def request_stop(self, reason: str = "",
                     drain_timeout: float | None = 30.0) -> None:
        """Begin graceful shutdown (idempotent, safe from any thread):
        drain the broker, then stop the listener."""
        with self._stop_lock:
            if self._stop_thread is not None:
                return
            self.broker.begin_drain()
            if reason:
                self._log(f"stopping ({reason}); draining "
                          f"{self.broker.queue_depth()} in-flight job(s)")
            # shutdown() must not run on the serve_forever thread, and
            # signal handlers run on the main thread which may be
            # wait()ing — so teardown gets its own thread.
            self._stop_thread = threading.Thread(
                target=self._stop, args=(drain_timeout,),
                name="serve-stop", daemon=True)
            self._stop_thread.start()

    def _stop(self, drain_timeout: float | None) -> None:
        self.drained = self.broker.stop(drain=True, timeout=drain_timeout)
        self._httpd.shutdown()
        self._httpd.server_close()
        self._stopped.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until shutdown completes; returns whether it did."""
        return self._stopped.wait(timeout)

    def stop(self, drain_timeout: float | None = 30.0) -> bool:
        """Synchronous stop for tests and embedding: request shutdown
        and wait for it."""
        self.request_stop(drain_timeout=drain_timeout)
        self.wait()
        return bool(self.drained)
