"""Modulo Reservation Table (MRT).

The classic structure at the heart of every modulo scheduler: a table of
``II`` rows; placing an instruction at absolute cycle ``c`` consumes one
instance of its functional-unit class in rows ``c % II .. (c+occ-1) % II``
(non-pipelined units reserve several consecutive rows) and one of the
``issue_width`` issue slots in row ``c % II``.

Placements are tracked per instruction so they can be removed — both SMS
(ejection-free but restart-based) and IMS (with backtracking/unscheduling)
use the same table.
"""

from __future__ import annotations

from ..errors import MachineError
from ..ir.opcode import FUClass, Opcode
from .resources import ResourceModel

__all__ = ["ModuloReservationTable"]


class ModuloReservationTable:
    """Resource bookkeeping for one candidate II."""

    def __init__(self, ii: int, resources: ResourceModel) -> None:
        if ii < 1:
            raise MachineError(f"II must be >= 1, got {ii}")
        self.ii = ii
        self.resources = resources
        # per-row FU usage counters: _fu_use[row][fu_class]
        self._fu_use: list[dict[FUClass, int]] = [dict() for _ in range(ii)]
        # per-row issue-slot usage
        self._issue_use: list[int] = [0] * ii
        # instruction name -> (cycle, opcode)
        self._placed: dict[str, tuple[int, Opcode]] = {}

    # -- queries -----------------------------------------------------------

    def fits(self, name: str, opcode: Opcode, cycle: int) -> bool:
        """Can ``name`` be placed at absolute ``cycle`` without conflicts?"""
        if name in self._placed:
            raise MachineError(f"instruction {name!r} already placed")
        fu = opcode.fu_class
        spec = self.resources.spec(fu)
        row0 = cycle % self.ii
        if self._issue_use[row0] >= self.resources.issue_width:
            return False
        if spec.occupancy >= self.ii:
            # a single op monopolises every row of this class; it fits only
            # if no other op of the class is present anywhere.
            if any(u.get(fu, 0) >= spec.count for u in self._fu_use):
                return False
            return True
        for k in range(spec.occupancy):
            row = (cycle + k) % self.ii
            if self._fu_use[row].get(fu, 0) >= spec.count:
                return False
        return True

    def occupancy_rows(self, opcode: Opcode, cycle: int) -> list[int]:
        spec = self.resources.spec(opcode.fu_class)
        occ = min(spec.occupancy, self.ii)
        return [(cycle + k) % self.ii for k in range(occ)]

    # -- mutation ------------------------------------------------------------

    def place(self, name: str, opcode: Opcode, cycle: int) -> None:
        if not self.fits(name, opcode, cycle):
            raise MachineError(
                f"cannot place {name!r} ({opcode.name}) at cycle {cycle} "
                f"(II={self.ii}): resource conflict")
        fu = opcode.fu_class
        for row in self.occupancy_rows(opcode, cycle):
            self._fu_use[row][fu] = self._fu_use[row].get(fu, 0) + 1
        self._issue_use[cycle % self.ii] += 1
        self._placed[name] = (cycle, opcode)

    def remove(self, name: str) -> None:
        if name not in self._placed:
            raise MachineError(f"instruction {name!r} is not placed")
        cycle, opcode = self._placed.pop(name)
        fu = opcode.fu_class
        for row in self.occupancy_rows(opcode, cycle):
            self._fu_use[row][fu] -= 1
        self._issue_use[cycle % self.ii] -= 1

    def placed_cycle(self, name: str) -> int | None:
        entry = self._placed.get(name)
        return entry[0] if entry else None

    def __contains__(self, name: str) -> bool:
        return name in self._placed

    def __len__(self) -> int:
        return len(self._placed)

    def utilisation(self) -> float:
        """Fraction of issue slots used across the kernel (0..1)."""
        total = self.ii * self.resources.issue_width
        return sum(self._issue_use) / total if total else 0.0
