"""Per-core machine model: functional units, latencies, reservation tables.

The scheduler-visible machine is a per-core issue machine: ``issue_width``
total issue slots per cycle, functional-unit classes with instance counts and
occupancy (non-pipelined units occupy their FU for several cycles, which is
how the motivating example's ``ResII = 4`` multiplier arises).

The simulator-visible additions (probabilistic cache latencies) live in
:mod:`repro.machine.cache`.
"""

from .resources import FUSpec, ResourceModel
from .latency import LatencyModel
from .reservation import ModuloReservationTable
from .cache import CacheModel

__all__ = [
    "CacheModel",
    "FUSpec",
    "LatencyModel",
    "ModuloReservationTable",
    "ResourceModel",
]
