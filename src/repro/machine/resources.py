"""Functional-unit resource model.

Each :class:`FUSpec` describes one functional-unit class: how many instances
a core has and how many consecutive cycles one operation *occupies* an
instance (1 for fully pipelined units).  ``ResMII`` — the resource-constrained
lower bound on the initiation interval — falls out of these occupancies:

    ResMII = max over classes of ceil(uses(class) * occupancy / count)

and is also bounded below by ``ceil(n_instructions / issue_width)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..errors import MachineError
from ..ir.opcode import FUClass, Opcode

__all__ = ["FUSpec", "ResourceModel"]


@dataclass(frozen=True)
class FUSpec:
    """One functional-unit class of a core."""

    count: int = 1
    occupancy: int = 1

    def __post_init__(self) -> None:
        if self.count < 1:
            raise MachineError(f"FU count must be >= 1, got {self.count}")
        if self.occupancy < 1:
            raise MachineError(f"FU occupancy must be >= 1, got {self.occupancy}")


#: Default 4-wide core: 2 ALUs, 2 FP adders, 2 FP multipliers (SPECfp-heavy
#: mixes saturate issue width before FP units, matching Table 2's
#: MII ~= #Inst/4), 1 (heavily non-pipelined) FP divider, 2 memory ports,
#: 1 operand-network port.
_DEFAULT_UNITS: dict[FUClass, FUSpec] = {
    FUClass.ALU: FUSpec(count=2),
    FUClass.FPADD: FUSpec(count=2),
    FUClass.FPMUL: FUSpec(count=2),
    FUClass.FPDIV: FUSpec(count=1, occupancy=8),
    FUClass.MEM: FUSpec(count=2),
    FUClass.COMM: FUSpec(count=1),
}


class ResourceModel:
    """Per-core functional units plus the issue-width constraint."""

    def __init__(self, units: Mapping[FUClass, FUSpec] | None = None,
                 *, issue_width: int = 4) -> None:
        if issue_width < 1:
            raise MachineError(f"issue_width must be >= 1, got {issue_width}")
        self.issue_width = issue_width
        self.units: dict[FUClass, FUSpec] = dict(_DEFAULT_UNITS)
        if units:
            self.units.update(units)
        for cls in FUClass:
            if cls not in self.units:
                raise MachineError(f"no FU spec for class {cls}")

    @classmethod
    def default(cls, issue_width: int = 4) -> "ResourceModel":
        return cls(issue_width=issue_width)

    def spec(self, fu: FUClass) -> FUSpec:
        return self.units[fu]

    def occupancy(self, opcode: Opcode) -> int:
        return self.units[opcode.fu_class].occupancy

    def res_mii(self, opcodes: Iterable[Opcode]) -> int:
        """Resource-constrained minimum II for a loop body's opcodes."""
        uses: dict[FUClass, int] = {}
        total = 0
        for op in opcodes:
            uses[op.fu_class] = uses.get(op.fu_class, 0) + 1
            total += 1
        bound = math.ceil(total / self.issue_width) if total else 1
        for fu, n in uses.items():
            spec = self.units[fu]
            bound = max(bound, math.ceil(n * spec.occupancy / spec.count))
        return max(bound, 1)

    def describe(self) -> str:
        rows = [f"issue width {self.issue_width}"]
        for fu, spec in sorted(self.units.items(), key=lambda kv: kv[0].value):
            pipe = "pipelined" if spec.occupancy == 1 else f"occupancy {spec.occupancy}"
            rows.append(f"{fu.value}: x{spec.count}, {pipe}")
        return "; ".join(rows)
