"""Compile-time latency model.

The scheduler plans with *assumed* latencies: the opcode defaults from
:mod:`repro.ir.opcode`, with loads pinned to the L1 hit latency of the
architecture, plus arbitrary per-opcode overrides (the motivating example
pins its multiply to 4 cycles to reproduce the paper's numbers).

Actual run-time load latencies may differ (cache misses) — that is the
simulator's business (:mod:`repro.machine.cache`)."""

from __future__ import annotations

from typing import Mapping

from ..config import ArchConfig
from ..errors import MachineError
from ..ir.instruction import Instruction
from ..ir.opcode import DEFAULT_LATENCY, Opcode

__all__ = ["LatencyModel"]


class LatencyModel:
    """Maps opcodes (and instructions) to assumed latencies in cycles."""

    def __init__(self, overrides: Mapping[Opcode, int] | None = None,
                 *, l1_hit_latency: int | None = None) -> None:
        self._lat = dict(DEFAULT_LATENCY)
        if l1_hit_latency is not None:
            if l1_hit_latency < 1:
                raise MachineError("l1_hit_latency must be >= 1")
            self._lat[Opcode.LOAD] = l1_hit_latency
        if overrides:
            for op, lat in overrides.items():
                if lat < 1:
                    raise MachineError(f"latency for {op.name} must be >= 1, got {lat}")
                self._lat[op] = lat

    @classmethod
    def for_arch(cls, arch: ArchConfig,
                 overrides: Mapping[Opcode, int] | None = None) -> "LatencyModel":
        return cls(overrides, l1_hit_latency=arch.l1_hit_latency)

    def of(self, op: Opcode | Instruction) -> int:
        if isinstance(op, Instruction):
            op = op.opcode
        return self._lat[op]

    def max_latency(self) -> int:
        return max(self._lat.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        diffs = {op.name: lat for op, lat in self._lat.items()
                 if DEFAULT_LATENCY[op] != lat}
        return f"LatencyModel(overrides={diffs})"
