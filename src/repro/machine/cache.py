"""Probabilistic cache latency model for the simulator.

The paper simulates a 16KB 4-way L1 D-cache (3-cycle hit) backed by a shared
1MB L2 (12-cycle hit, 80-cycle miss).  Our substitution draws each load's
latency from the configured miss rates, which preserves the *distribution*
of load latencies without modelling tag arrays.  With the default miss rates
of zero the model degenerates to the scheduler's assumption (every load is
an L1 hit), which keeps the headline experiments deterministic; cache
sensitivity is explored in the ablation bench.
"""

from __future__ import annotations

import numpy as np

from ..config import ArchConfig

__all__ = ["CacheModel"]


class CacheModel:
    """Draws per-load latencies for a given architecture."""

    def __init__(self, arch: ArchConfig, rng: np.random.Generator) -> None:
        self.arch = arch
        self._rng = rng

    def load_latency(self) -> int:
        """Latency of one dynamic load, in cycles."""
        arch = self.arch
        if arch.l1_miss_rate <= 0.0:
            return arch.l1_hit_latency
        if self._rng.random() >= arch.l1_miss_rate:
            return arch.l1_hit_latency
        if arch.l2_miss_rate > 0.0 and self._rng.random() < arch.l2_miss_rate:
            return arch.l2_miss_latency
        return arch.l2_hit_latency

    def expected_load_latency(self) -> float:
        """Mean load latency implied by the miss rates."""
        arch = self.arch
        p1, p2 = arch.l1_miss_rate, arch.l2_miss_rate
        return ((1 - p1) * arch.l1_hit_latency
                + p1 * ((1 - p2) * arch.l2_hit_latency + p2 * arch.l2_miss_latency))
