"""Figure 5: speedups of TMS over single-threaded code."""

from repro.experiments import render_fig5, run_fig5

from conftest import LOOP_ITERATIONS


def test_fig5(benchmark, table3_rows):
    rows = benchmark.pedantic(
        run_fig5, kwargs=dict(iterations=LOOP_ITERATIONS,
                              table3_rows=table3_rows),
        rounds=1, iterations=1)
    print("\n" + render_fig5(rows))
    assert all(r.loop_speedup > 1.0 for r in rows)
    assert max(rows, key=lambda r: r.program_speedup).benchmark == "equake"
    assert min(rows, key=lambda r: r.loop_speedup).benchmark == "lucas"
