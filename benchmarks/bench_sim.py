"""Simulation wall-time: steady-state fast path vs the exact event loop.

Measures best-of-N :meth:`SpMTSimulator.run` per paper kernel (SMS and
TMS schedules of the table2/table3 golden population) at a long
iteration count, through the **default** vectorised/fast-forward path,
and compares the total against
``benchmarks/baselines/bench_sim_seed.json`` — the same measurement
through the **reference event loop** (``SimConfig(exact=True)``),
captured by ``scripts/regen_sim_golden.py --timing``.  Both paths
produce byte-identical ``SimStats`` (tests/test_sim_golden.py pins
that), so the ratio is pure overhead removed.

Standalone, for CI and local runs::

    PYTHONPATH=src python benchmarks/bench_sim.py --quick \
        --out obs/bench-sim.json

``--quick`` drops to a single repeat per kernel (CI-friendly; the
default best-of-3 smooths machine noise).  ``--exact`` measures the
reference loop instead — handy for re-deriving the baseline shape
without writing it.  Timings are machine-specific: speedups are only
meaningful against a baseline captured on the same machine, so the
script reports the ratio but never fails on it unless ``--min-speedup``
is given.

Also collectable by the pytest-benchmark harness like its siblings::

    pytest benchmarks/bench_sim.py --benchmark-only -s
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "baselines" / "bench_sim_seed.json"

#: population cap and workload matching the seed baseline.
MAX_LOOPS = 4
ITERATIONS = 20000
SEED = 0xACE5


def _pipelined_kernels():
    """(kernel-key, pipelined, arch) for every benchmarked simulation."""
    from repro.config import ArchConfig
    from repro.experiments.validate import suite_loops
    from repro.graph import build_ddg
    from repro.machine import LatencyModel, ResourceModel
    from repro.sched import run_postpass, schedule_sms, schedule_tms

    arch = ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    latency = LatencyModel.for_arch(arch)
    out = []
    for _benchmark, loop in suite_loops(("table2", "table3"), MAX_LOOPS):
        ddg = build_ddg(loop, latency)
        for alg, sched in (("SMS", schedule_sms(ddg, resources)),
                           ("TMS", schedule_tms(ddg, resources, arch))):
            out.append((f"{loop.name}/{alg}",
                        run_postpass(sched, arch), arch))
    return out


def measure_sim(repeats: int = 3, *, exact: bool = False,
                iterations: int = ITERATIONS) -> dict:
    """Best-of-``repeats`` simulation seconds per kernel/schedule pair
    (the exact measurement behind the seed baseline when ``exact``)."""
    from repro.config import SimConfig
    from repro.spmt.sim import SpMTSimulator

    sim = SimConfig(iterations=iterations, seed=SEED, exact=exact)
    per_kernel = {}
    for key, pipelined, arch in _pipelined_kernels():
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            SpMTSimulator(pipelined, arch, sim).run()
            best = min(best, time.perf_counter() - start)
        per_kernel[key] = best
    return {
        "max_loops": MAX_LOOPS,
        "iterations": iterations,
        "repeats": repeats,
        "mode": "exact" if exact else "fast",
        "total_seconds": sum(per_kernel.values()),
        "per_kernel_seconds": per_kernel,
    }


def compare_to_baseline(result: dict,
                        baseline_path: Path = BASELINE) -> dict:
    """``result`` plus the exact-loop baseline comparison (speedup,
    slowest kernels), JSON-able."""
    report = dict(result)
    report["baseline_path"] = str(baseline_path)
    if not baseline_path.exists():
        report["baseline"] = None
        report["speedup_over_exact"] = None
        return report
    baseline = json.loads(baseline_path.read_text())
    report["baseline"] = {
        "total_seconds": baseline["total_seconds"],
        "repeats": baseline.get("repeats"),
        "iterations": baseline.get("iterations"),
        "max_loops": baseline.get("max_loops"),
    }
    total = result["total_seconds"]
    report["speedup_over_exact"] = (
        baseline["total_seconds"] / total if total > 0 else None)
    base_per = baseline.get("per_kernel_seconds", {})
    slowest = sorted(result["per_kernel_seconds"].items(),
                     key=lambda kv: kv[1], reverse=True)[:5]
    report["slowest_kernels"] = [
        {"kernel": k, "seconds": s, "exact_seconds": base_per.get(k)}
        for k, s in slowest
    ]
    return report


def render(report: dict) -> str:
    lines = [f"sim ({report['mode']}): {report['total_seconds']:.3f}s over "
             f"{len(report['per_kernel_seconds'])} kernel simulations "
             f"x {report['iterations']} iterations "
             f"(best of {report['repeats']})"]
    if report.get("baseline"):
        lines.append(
            f"exact-loop baseline: "
            f"{report['baseline']['total_seconds']:.3f}s "
            f"-> {report['speedup_over_exact']:.2f}x speedup")
        for row in report.get("slowest_kernels", []):
            exact = (f"{row['exact_seconds']:.3f}s"
                     if row["exact_seconds"] is not None else "n/a")
            lines.append(f"  {row['kernel']}: {row['seconds']:.3f}s "
                         f"(exact {exact})")
    else:
        lines.append("exact-loop baseline missing; speedup not computed")
    return "\n".join(lines)


def test_bench_sim(benchmark):
    """pytest-benchmark entry: one quick fast-path pass, printed with -s."""
    result = benchmark.pedantic(measure_sim, kwargs={"repeats": 1},
                                rounds=1, iterations=1)
    report = compare_to_baseline(result)
    print("\n" + render(report))
    assert len(result["per_kernel_seconds"]) > 0
    assert result["total_seconds"] > 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="single repeat per kernel (CI mode)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override repeats (default 3; --quick => 1)")
    parser.add_argument("--exact", action="store_true",
                        help="measure the reference event loop instead of "
                             "the fast path")
    parser.add_argument("--iterations", type=int, default=ITERATIONS)
    parser.add_argument("--baseline", default=BASELINE, type=Path)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless speedup over the exact-loop "
                             "baseline reaches this ratio (timings are "
                             "machine-specific; use only with a same-"
                             "machine baseline)")
    args = parser.parse_args()

    repeats = args.repeats if args.repeats is not None \
        else (1 if args.quick else 3)
    start = time.perf_counter()
    result = measure_sim(repeats=repeats, exact=args.exact,
                         iterations=args.iterations)
    result["quick"] = bool(args.quick)
    report = compare_to_baseline(result, Path(args.baseline))
    print(render(report))
    # one run-ledger record per invocation (no-op unless REPRO_LEDGER_DIR
    # is set); the report CLI renders/gates on these.
    import sys

    from repro.obs.ledger import append_run_record
    append_run_record(
        "bench_sim", sys.argv[1:],
        duration_seconds=time.perf_counter() - start,
        extra={"total_seconds": report["total_seconds"],
               "kernels": len(report["per_kernel_seconds"]),
               "iterations": report["iterations"],
               "mode": report["mode"],
               "repeats": report["repeats"],
               "speedup_over_exact": report.get("speedup_over_exact")})
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"[json report written to {out}]")
    if args.min_speedup is not None:
        speedup = report.get("speedup_over_exact")
        if speedup is None or speedup < args.min_speedup:
            print(f"FAIL: speedup {speedup} below --min-speedup "
                  f"{args.min_speedup}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
