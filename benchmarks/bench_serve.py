"""Serve daemon latency: warm server vs cold process, burst percentiles.

Three measurements, all against a daemon embedded in this process (real
HTTP over loopback, so the numbers include protocol cost):

- **cold process**: one fresh ``Session`` compile+simulate per request —
  the cost a shell loop around ``tms-experiments compile`` pays every
  time (interpreter startup excluded, so this *understates* the cold
  side and the warm/cold ratio is conservative);
- **warm server**: the same request against a running daemon whose
  session, artifact cache and worker pool stay hot — the first request
  computes, the rest measure the served path;
- **burst**: N concurrent client threads firing a small request mix at
  once; reports p50/p95 response latency under coalescing and
  admission control.

Standalone, for CI and local runs::

    PYTHONPATH=src python benchmarks/bench_serve.py --quick \
        --out obs/bench-serve.json

Also collectable by the pytest-benchmark harness like its siblings::

    pytest benchmarks/bench_serve.py --benchmark-only -s
"""

from __future__ import annotations

import argparse
import json
import threading
import time
from pathlib import Path

#: the reference loop every request carries (same kernel family as the
#: repo-wide AXPY fixture)
AXPY_SRC = """
loop axpy
array X 64
array Y 64
livein a 2.0
livein s 0.0
n0: x = load X[i]
n1: t = fmul x, a
n2: y = load Y[i]
n3: r = fadd t, y
n4: store Y[i], r
n5: s = fadd s, r
"""

BURST_SIZE = 32


def _request(**kw):
    from repro.serve import ServeRequest
    base = dict(kind="simulate", source=AXPY_SRC, iterations=200)
    base.update(kw)
    return ServeRequest(**base)


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[idx]


def measure_cold_process(repeats: int) -> list[float]:
    """Per-request seconds when every request pays a fresh session
    (no cache, no warm pool) — the no-daemon baseline."""
    from repro.serve.broker import execute_request
    from repro.session import Session

    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        execute_request(Session(jobs=1), _request())
        samples.append(time.perf_counter() - start)
    return samples


def measure_serve(repeats: int) -> dict:
    """Warm-server latencies plus a burst profile, one daemon for all."""
    from repro.serve import ServeClient, ServeDaemon, wait_ready

    daemon = ServeDaemon(port=0).start()
    try:
        client = ServeClient("127.0.0.1", daemon.port, timeout=120.0)
        if not wait_ready(client, timeout=30.0):
            raise RuntimeError("serve daemon never became ready")

        start = time.perf_counter()
        first = client.submit(_request())
        first_seconds = time.perf_counter() - start
        assert first.ok, first.response

        warm = []
        for _ in range(repeats):
            start = time.perf_counter()
            out = client.submit(_request())
            warm.append(time.perf_counter() - start)
            assert out.ok and out.served == "cached", out.served

        # burst: concurrent threads over a small request mix, so the
        # daemon sees coalescible duplicates AND distinct work at once
        variants = [_request(), _request(iterations=400),
                    _request(kind="compile"), _request(cores=2)]
        latencies = [0.0] * BURST_SIZE
        errors: list[str] = []

        def fire(i: int) -> None:
            begin = time.perf_counter()
            try:
                out = client.submit(variants[i % len(variants)])
                if not out.ok:
                    errors.append(out.response.get("error", out.status))
            except Exception as exc:  # noqa: BLE001 — recorded, reported
                errors.append(str(exc))
            latencies[i] = time.perf_counter() - begin

        threads = [threading.Thread(target=fire, args=(i,))
                   for i in range(BURST_SIZE)]
        burst_start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        burst_seconds = time.perf_counter() - burst_start
        if errors:
            raise RuntimeError(f"burst produced errors: {errors[:3]}")

        ordered = sorted(latencies)
        stats = daemon.broker.stats()
        return {
            "first_request_seconds": first_seconds,
            "warm_samples": warm,
            "warm_seconds": min(warm),
            "burst_size": BURST_SIZE,
            "burst_wall_seconds": burst_seconds,
            "burst_p50_seconds": _percentile(ordered, 0.50),
            "burst_p95_seconds": _percentile(ordered, 0.95),
            "server_counts": stats["counts"],
            "cache": {"hits": stats["cache"]["hits"],
                      "misses": stats["cache"]["misses"]},
        }
    finally:
        daemon.stop(drain_timeout=30.0)


def measure(repeats: int = 5) -> dict:
    cold = measure_cold_process(repeats)
    serve = measure_serve(repeats)
    report = {
        "repeats": repeats,
        "cold_process_samples": cold,
        "cold_process_seconds": min(cold),
        **serve,
    }
    cold_s, warm_s = report["cold_process_seconds"], report["warm_seconds"]
    report["warm_speedup_over_cold"] = (cold_s / warm_s) if warm_s > 0 \
        else None
    return report


def render(report: dict) -> str:
    lines = [
        f"cold process: {1e3 * report['cold_process_seconds']:.2f} ms/request "
        f"(best of {report['repeats']})",
        f"warm server:  {1e3 * report['warm_seconds']:.2f} ms/request "
        f"(first request {1e3 * report['first_request_seconds']:.2f} ms)",
        f"speedup: {report['warm_speedup_over_cold']:.1f}x warm over cold",
        f"burst of {report['burst_size']}: "
        f"p50 {1e3 * report['burst_p50_seconds']:.2f} ms, "
        f"p95 {1e3 * report['burst_p95_seconds']:.2f} ms, "
        f"wall {1e3 * report['burst_wall_seconds']:.2f} ms",
        f"server counts: {report['server_counts']}",
    ]
    return "\n".join(lines)


def test_bench_serve(benchmark):
    """pytest-benchmark entry: one quick pass, printed with -s."""
    report = benchmark.pedantic(measure, kwargs={"repeats": 2},
                                rounds=1, iterations=1)
    print("\n" + render(report))
    assert report["warm_seconds"] > 0
    assert report["server_counts"]["errors"] == 0
    # the warm path must actually beat paying a cold session per request
    assert report["warm_seconds"] < report["cold_process_seconds"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer repeats (CI mode)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override repeats (default 5; --quick => 2)")
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless warm beats cold by this ratio")
    args = parser.parse_args()

    repeats = args.repeats if args.repeats is not None \
        else (2 if args.quick else 5)
    start = time.perf_counter()
    report = measure(repeats=repeats)
    report["quick"] = bool(args.quick)
    print(render(report))
    # one run-ledger record per invocation (no-op unless REPRO_LEDGER_DIR
    # is set); the report CLI renders/gates on these.
    import sys

    from repro.obs.ledger import append_run_record
    append_run_record(
        "bench_serve", sys.argv[1:],
        duration_seconds=time.perf_counter() - start,
        extra={"cold_process_seconds": report["cold_process_seconds"],
               "warm_seconds": report["warm_seconds"],
               "warm_speedup_over_cold": report["warm_speedup_over_cold"],
               "burst_p50_seconds": report["burst_p50_seconds"],
               "burst_p95_seconds": report["burst_p95_seconds"]})
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"[json report written to {out}]")
    if args.min_speedup is not None:
        speedup = report.get("warm_speedup_over_cold")
        if speedup is None or speedup < args.min_speedup:
            print(f"FAIL: warm speedup {speedup} below --min-speedup "
                  f"{args.min_speedup}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
