"""Figure 4: speedups of TMS over SMS (quad-core SpMT simulation)."""

from repro.experiments import render_fig4, run_fig4

from conftest import SUITE_ITERATIONS


def test_fig4(benchmark, table2_rows):
    rows = benchmark.pedantic(
        run_fig4, kwargs=dict(iterations=SUITE_ITERATIONS,
                              table2_rows=table2_rows),
        rounds=1, iterations=1)
    print("\n" + render_fig4(rows))
    avg = sum(r.loop_speedup for r in rows) / len(rows)
    assert avg > 1.05  # paper: +28% average loop speedup
    by = {r.benchmark: r for r in rows}
    # wupwise gains (almost) nothing — its dominant loop is one big SCC
    assert by["wupwise"].loop_speedup == min(r.loop_speedup for r in rows)
