"""Table 3: the selected DOACROSS loops and their TMS metrics."""

from repro.experiments import render_table3


def test_table3(benchmark, table3_rows):
    text = benchmark.pedantic(render_table3, args=(table3_rows,),
                              rounds=1, iterations=1)
    print("\n" + text)
    by = {r.benchmark: r for r in table3_rows}
    assert by["lucas"].tms_cdelay >= by["lucas"].avg_mii  # recurrence-bound
    assert by["equake"].tms_cdelay <= 8
    assert by["art"].n_loops == 4
