"""Cold TMS scheduling wall-time: unified engine vs the seed baseline.

Measures the same thing ``scripts/regen_sched_golden.py --timing`` does —
best-of-N cold ``ThreadSensitiveScheduler.schedule()`` per synthetic
SPECfp kernel, fresh scheduler each run, no session cache — and compares
the total against ``benchmarks/baselines/bench_sched_seed.json`` (captured
from the pre-engine implementation on the same population).

Standalone, for CI and local runs::

    PYTHONPATH=src python benchmarks/bench_sched.py --quick \
        --out obs/bench-sched.json

``--quick`` drops to a single repeat per kernel (CI-friendly; the default
best-of-3 smooths scheduler-external noise).  Timings are
machine-specific: speedups are only meaningful against a baseline
captured on the same machine, so the script reports the ratio but never
fails on it unless ``--min-speedup`` is given.

Also collectable by the pytest-benchmark harness like its siblings::

    pytest benchmarks/bench_sched.py --benchmark-only -s
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "benchmarks" / "baselines" / "bench_sched_seed.json"

#: population cap matching the golden file and the seed baseline.
MAX_LOOPS = 4


def measure_cold_tms(repeats: int = 3) -> dict:
    """Best-of-``repeats`` cold TMS schedule seconds per synthetic-SPECfp
    kernel (the exact measurement behind the seed baseline)."""
    from repro.config import ArchConfig
    from repro.experiments.validate import suite_loops
    from repro.graph import build_ddg
    from repro.machine import LatencyModel, ResourceModel
    from repro.sched.tms import ThreadSensitiveScheduler

    arch = ArchConfig.paper_default()
    resources = ResourceModel.default(arch.issue_width)
    latency = LatencyModel.for_arch(arch)
    per_kernel = {}
    for _benchmark, loop in suite_loops(("table2",), MAX_LOOPS):
        ddg = build_ddg(loop, latency)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            ThreadSensitiveScheduler(ddg, resources, arch).schedule()
            best = min(best, time.perf_counter() - start)
        per_kernel[loop.name] = best
    return {
        "max_loops": MAX_LOOPS,
        "repeats": repeats,
        "total_seconds": sum(per_kernel.values()),
        "per_kernel_seconds": per_kernel,
    }


def compare_to_baseline(result: dict,
                        baseline_path: Path = BASELINE) -> dict:
    """``result`` plus the seed-baseline comparison (speedup, slowest
    kernels), JSON-able."""
    report = dict(result)
    report["baseline_path"] = str(baseline_path)
    if not baseline_path.exists():
        report["baseline"] = None
        report["speedup_over_seed"] = None
        return report
    baseline = json.loads(baseline_path.read_text())
    report["baseline"] = {
        "total_seconds": baseline["total_seconds"],
        "repeats": baseline.get("repeats"),
        "max_loops": baseline.get("max_loops"),
    }
    total = result["total_seconds"]
    report["speedup_over_seed"] = (
        baseline["total_seconds"] / total if total > 0 else None)
    base_per = baseline.get("per_kernel_seconds", {})
    slowest = sorted(result["per_kernel_seconds"].items(),
                     key=lambda kv: kv[1], reverse=True)[:5]
    report["slowest_kernels"] = [
        {"kernel": k, "seconds": s, "seed_seconds": base_per.get(k)}
        for k, s in slowest
    ]
    return report


def render(report: dict) -> str:
    lines = [f"cold TMS: {report['total_seconds']:.3f}s over "
             f"{len(report['per_kernel_seconds'])} kernels "
             f"(best of {report['repeats']})"]
    if report.get("baseline"):
        lines.append(
            f"seed baseline: {report['baseline']['total_seconds']:.3f}s "
            f"-> {report['speedup_over_seed']:.2f}x speedup")
        for row in report.get("slowest_kernels", []):
            seed = (f"{row['seed_seconds']:.3f}s"
                    if row["seed_seconds"] is not None else "n/a")
            lines.append(f"  {row['kernel']}: {row['seconds']:.3f}s "
                         f"(seed {seed})")
    else:
        lines.append("seed baseline missing; speedup not computed")
    return "\n".join(lines)


def test_bench_sched(benchmark):
    """pytest-benchmark entry: one quick cold pass, printed with -s."""
    result = benchmark.pedantic(measure_cold_tms, kwargs={"repeats": 1},
                                rounds=1, iterations=1)
    report = compare_to_baseline(result)
    print("\n" + render(report))
    assert len(result["per_kernel_seconds"]) > 0
    assert result["total_seconds"] > 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="single repeat per kernel (CI mode)")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override repeats (default 3; --quick => 1)")
    parser.add_argument("--baseline", default=BASELINE, type=Path)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless speedup over the seed baseline "
                             "reaches this ratio (timings are machine-"
                             "specific; use only with a same-machine "
                             "baseline)")
    args = parser.parse_args()

    repeats = args.repeats if args.repeats is not None \
        else (1 if args.quick else 3)
    start = time.perf_counter()
    result = measure_cold_tms(repeats=repeats)
    result["quick"] = bool(args.quick)
    report = compare_to_baseline(result, Path(args.baseline))
    print(render(report))
    # one run-ledger record per invocation (no-op unless REPRO_LEDGER_DIR
    # is set); the report CLI renders/gates on these.
    import sys

    from repro.obs.ledger import append_run_record
    append_run_record(
        "bench_sched", sys.argv[1:],
        duration_seconds=time.perf_counter() - start,
        extra={"total_seconds": report["total_seconds"],
               "kernels": len(report["per_kernel_seconds"]),
               "repeats": report["repeats"],
               "speedup_over_seed": report.get("speedup_over_seed")})
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"[json report written to {out}]")
    if args.min_speedup is not None:
        speedup = report.get("speedup_over_seed")
        if speedup is None or speedup < args.min_speedup:
            print(f"FAIL: speedup {speedup} below --min-speedup "
                  f"{args.min_speedup}")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
