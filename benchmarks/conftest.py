"""Benchmark harness configuration.

Each bench regenerates one of the paper's tables/figures and prints it
(run with ``-s`` to see the output).  Populations and trip counts default
to laptop-quick settings; set ``REPRO_FULL=1`` for the full 778-loop suite
and paper-scale trip counts.

All benches route through the process-wide :class:`repro.session.Session`,
so the environment knobs the session layer honours apply here too:

* ``REPRO_CACHE_DIR=/path`` — persist compiled artifacts on disk; a warm
  rerun of the whole bench suite recompiles nothing (the session-scoped
  fixtures below already share one compilation of Table 2 / Table 3
  within a run even without it).
* ``REPRO_JOBS=N`` — fan compilations/simulations out over ``N`` worker
  processes (``-1`` = all cores); result ordering stays deterministic.
* ``REPRO_CACHE_SIZE=N`` — in-memory artifact LRU capacity (default 2048).

    pytest benchmarks/ --benchmark-only
    REPRO_FULL=1 pytest benchmarks/ --benchmark-only -s
    REPRO_FULL=1 REPRO_JOBS=-1 REPRO_CACHE_DIR=~/.cache/repro \\
        pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest


FULL = os.environ.get("REPRO_FULL", "") == "1"

#: per-benchmark loop-population cap (None = all loops)
MAX_LOOPS = None if FULL else 4
#: simulated trip count for suite experiments
SUITE_ITERATIONS = 1000 if FULL else 200
#: simulated trip count for the selected DOACROSS loops
LOOP_ITERATIONS = 2000 if FULL else 500


@pytest.fixture(scope="session")
def repro_session():
    """The process session the benches compile through (shared cache)."""
    from repro.session import get_session
    return get_session()


@pytest.fixture(scope="session")
def table2_rows(repro_session):
    from repro.experiments import run_table2
    return run_table2(max_loops=MAX_LOOPS, session=repro_session)


@pytest.fixture(scope="session")
def table3_rows(repro_session):
    from repro.experiments import run_table3
    return run_table3(session=repro_session)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print the session's compile/cache counters after a bench run."""
    try:
        from repro.session import get_session
        terminalreporter.write_line(get_session().report())
    except Exception:
        pass
