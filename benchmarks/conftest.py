"""Benchmark harness configuration.

Each bench regenerates one of the paper's tables/figures and prints it
(run with ``-s`` to see the output).  Populations and trip counts default
to laptop-quick settings; set ``REPRO_FULL=1`` for the full 778-loop suite
and paper-scale trip counts.

    pytest benchmarks/ --benchmark-only
    REPRO_FULL=1 pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest


FULL = os.environ.get("REPRO_FULL", "") == "1"

#: per-benchmark loop-population cap (None = all loops)
MAX_LOOPS = None if FULL else 4
#: simulated trip count for suite experiments
SUITE_ITERATIONS = 1000 if FULL else 200
#: simulated trip count for the selected DOACROSS loops
LOOP_ITERATIONS = 2000 if FULL else 500


@pytest.fixture(scope="session")
def table2_rows():
    from repro.experiments import run_table2
    return run_table2(max_loops=MAX_LOOPS)


@pytest.fixture(scope="session")
def table3_rows():
    from repro.experiments import run_table3
    return run_table3()
