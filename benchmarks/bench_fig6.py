"""Figure 6: synchronisation stalls, SEND/RECV pairs, communication
overhead — TMS vs SMS on the selected loops."""

from repro.experiments import render_fig6, run_fig6

from conftest import LOOP_ITERATIONS


def test_fig6(benchmark, table3_rows):
    rows = benchmark.pedantic(
        run_fig6, kwargs=dict(iterations=LOOP_ITERATIONS,
                              table3_rows=table3_rows),
        rounds=1, iterations=1)
    print("\n" + render_fig6(rows))
    by = {r.benchmark: r for r in rows}
    for name in ("art", "equake", "fma3d"):
        assert by[name].stall_reduction > 0.5, name   # paper: >50%
    assert by["lucas"].stall_reduction == min(
        r.stall_reduction for r in rows)               # lucas least
    assert all(r.comm_reduction > 0 for r in rows)     # Fig 6(c)
