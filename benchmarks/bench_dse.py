"""Design-space exploration: a tiny core-count sweep through the full
engine (space -> grid strategy -> trial evaluation -> Pareto report),
plus the warm-cache path that makes repeated sweeps free."""

from repro.dse import (SweepEngine, SweepReport, WorkloadSpec,
                       make_strategy, space_from_dict)

from conftest import FULL, LOOP_ITERATIONS


def _run_sweep(session, fidelity):
    space = space_from_dict({"arch.ncore": [2, 4, 8]})
    strategy = make_strategy("grid", space, fidelity=fidelity)
    workload = WorkloadSpec(suite="table3",
                            max_kernels=None if FULL else 2)
    engine = SweepEngine(space, strategy, workload=workload,
                         session=session)
    outcome = engine.run()
    return space, strategy, outcome


def test_dse_core_sweep(benchmark, repro_session):
    space, strategy, outcome = benchmark.pedantic(
        _run_sweep, args=(repro_session, LOOP_ITERATIONS // 5),
        rounds=1, iterations=1)
    report = SweepReport.build(space, strategy.name, 0xACE5,
                               outcome.results)
    print("\n" + report.render_markdown())
    assert len(outcome.results) == 3
    frontier = report.pareto()
    assert 1 <= len(frontier) <= 3
    # every kernel found some configuration where TMS beats SMS
    assert all(info["speedup"] > 1.0
               for info in report.best_configs().values())


def test_dse_warm_sweep_is_free(benchmark, repro_session):
    fidelity = LOOP_ITERATIONS // 5
    _run_sweep(repro_session, fidelity)          # prime the trial cache
    space, strategy, outcome = benchmark.pedantic(
        _run_sweep, args=(repro_session, fidelity), rounds=1, iterations=1)
    print(f"\nwarm sweep: {outcome.summary()}")
    assert outcome.evaluated == 0
    assert outcome.from_cache == len(outcome.results) == 3
