"""Ablations: the Section-5.2 speculation switch plus the design-choice
sweeps DESIGN.md calls out (P_max, operand-network latency, core count,
underlying modulo scheduler)."""

from repro.experiments import (
    render_speculation,
    run_comm_latency_sweep,
    run_core_sweep,
    run_pmax_sweep,
    run_speculation,
)
from repro.experiments.ablation import run_scheduler_comparison

from conftest import LOOP_ITERATIONS


def test_speculation_ablation(benchmark):
    rows = benchmark.pedantic(
        run_speculation, kwargs=dict(iterations=LOOP_ITERATIONS),
        rounds=1, iterations=1)
    print("\n" + render_speculation(rows))
    by_bench = {}
    for r in rows:
        by_bench.setdefault(r.benchmark, []).append(r)
    # paper: equake and fma3d lose double-digit fractions of their gain
    for name in ("equake", "fma3d"):
        assert any(r.gain_reduction > 0.1 for r in by_bench[name]), name
    # paper: misspeculation frequency stays below 0.1%
    assert all(r.misspec_frequency < 0.001 for r in rows)


def test_pmax_sweep(benchmark):
    points = benchmark.pedantic(
        run_pmax_sweep,
        kwargs=dict(iterations=LOOP_ITERATIONS // 2, benchmarks=["art"]),
        rounds=1, iterations=1)
    print("\nP_max sweep (art loops):")
    for p in points:
        print(f"  P_max={p.p_max:<5} II={p.tms_ii:5.1f} "
              f"C_delay={p.tms_cdelay:5.1f} "
              f"misspec={100 * p.misspec_frequency:.3f}% "
              f"cyc/iter={p.cycles_per_iteration:.2f}")
    assert points[0].misspec_frequency <= points[-1].misspec_frequency + 1e-9


def test_comm_latency_sweep(benchmark):
    rows = benchmark.pedantic(
        run_comm_latency_sweep,
        kwargs=dict(iterations=LOOP_ITERATIONS // 2, benchmarks=["art"]),
        rounds=1, iterations=1)
    print("\noperand-network latency sweep (art loops):")
    for r in rows:
        print(f"  C_reg_com={r['reg_comm_latency']}: "
              f"C_delay={r['avg_c_delay']:.1f} "
              f"cyc/iter={r['avg_cycles_per_iteration']:.2f}")
    assert rows[0]["avg_c_delay"] <= rows[-1]["avg_c_delay"]


def test_core_sweep(benchmark):
    rows = benchmark.pedantic(
        run_core_sweep,
        kwargs=dict(iterations=LOOP_ITERATIONS // 2, benchmarks=["art"]),
        rounds=1, iterations=1)
    print("\ncore-count sweep (art loops):")
    for r in rows:
        print(f"  ncore={r['ncore']}: II={r['avg_tms_ii']:.1f} "
              f"C_delay={r['avg_c_delay']:.1f} "
              f"cyc/iter={r['avg_cycles_per_iteration']:.2f}")
    assert rows[-1]["avg_cycles_per_iteration"] <= \
        rows[0]["avg_cycles_per_iteration"] + 1e-9


def test_scheduler_comparison(benchmark):
    rows = benchmark.pedantic(
        run_scheduler_comparison,
        kwargs=dict(iterations=LOOP_ITERATIONS // 2, benchmarks=["art"]),
        rounds=1, iterations=1)
    print("\nSMS vs IMS vs Huff vs TMS on the SpMT machine (art loops):")
    for r in rows:
        print(f"  {r['loop']}: SMS {r['sms_cpi']:.2f}  IMS {r['ims_cpi']:.2f}"
              f"  Huff {r['huff_cpi']:.2f}  TMS {r['tms_cpi']:.2f} cyc/iter")
    for r in rows:
        assert r["tms_cdelay"] <= r["sms_cdelay"] + 1e-9


def test_granularity_sweep(benchmark):
    """The paper's future work: unroll to vary thread granularity."""
    from repro.experiments.ablation import run_granularity_sweep
    rows = benchmark.pedantic(
        run_granularity_sweep,
        kwargs=dict(factors=(1, 2, 4), iterations=LOOP_ITERATIONS // 2,
                    benchmarks=["art"]),
        rounds=1, iterations=1)
    print("\nthread-granularity sweep (small art loops, per-original-"
          "iteration):")
    for r in rows:
        print(f"  unroll x{r['unroll_factor']}: II={r['avg_tms_ii']:.1f} "
              f"pairs/iter={r['avg_pairs_per_orig_iteration']:.2f} "
              f"cyc/iter={r['avg_cycles_per_orig_iteration']:.2f}")
    # coarser threads communicate less per original iteration
    assert rows[-1]["avg_pairs_per_orig_iteration"] < \
        rows[0]["avg_pairs_per_orig_iteration"]


def test_nest_crossover(benchmark):
    """Outer-loop future work: inner-TMS amortisation vs nest baselines."""
    from repro.experiments.nest import render_nest_crossover, run_nest_crossover
    points = benchmark.pedantic(
        run_nest_crossover,
        kwargs=dict(inner_trips=(4, 16, 64, 256),
                    benchmarks=["equake", "fma3d"]),
        rounds=1, iterations=1)
    print("\n" + render_nest_crossover(points))
    by = {(p.loop, p.inner_trip): p for p in points}
    # amortisation: per-iteration cost falls monotonically with trip count
    for loop in {p.loop for p in points}:
        cpis = [by[(loop, t)].inner_tms_cpi for t in (4, 16, 64, 256)]
        assert cpis == sorted(cpis, reverse=True), loop


def test_cache_sensitivity(benchmark):
    """Probabilistic cache: throughput vs L1/L2 miss rates (both the
    baseline and the SpMT kernels slow down; the scheduler still plans
    for L1 hits, as the paper's compiler does)."""
    from repro.config import ArchConfig, SimConfig
    from repro.machine import LatencyModel, ResourceModel
    from repro.graph import build_ddg
    from repro.sched import run_postpass, schedule_tms
    from repro.spmt import simulate
    from repro.workloads import selected_loops

    def run():
        out = []
        base = ArchConfig.paper_default()
        sl = selected_loops("equake")[0]
        ddg = build_ddg(sl.loop, LatencyModel.for_arch(base))
        resources = ResourceModel.default()
        tms = schedule_tms(ddg, resources, base)
        for l1_miss in (0.0, 0.05, 0.2):
            arch = ArchConfig(l1_miss_rate=l1_miss, l2_miss_rate=0.1)
            pipelined = run_postpass(tms, arch)
            stats = simulate(pipelined, arch,
                             SimConfig(iterations=LOOP_ITERATIONS // 2))
            out.append((l1_miss, stats.cycles_per_iteration))
        return out

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\ncache sensitivity (equake smvp, TMS kernel):")
    for miss, cpi in rows:
        print(f"  L1 miss rate {miss:4.0%}: {cpi:.2f} cyc/iter")
    cpis = [cpi for _m, cpi in rows]
    assert cpis == sorted(cpis)  # misses only slow things down
