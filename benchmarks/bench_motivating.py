"""Figures 1-2: the motivating example, SMS vs TMS on the SpMT machine."""

from repro.config import ArchConfig, SimConfig
from repro.costmodel import achieved_c_delay
from repro.sched import run_postpass, schedule_sms, schedule_tms
from repro.spmt import simulate
from repro.workloads import motivating_ddg, motivating_machine

from conftest import LOOP_ITERATIONS


def _run():
    arch = ArchConfig.paper_default()
    ddg = motivating_ddg()
    machine = motivating_machine()
    sms = schedule_sms(ddg, machine)
    tms = schedule_tms(ddg, machine, arch)
    out = {"sms_ii": sms.ii, "tms_ii": tms.ii,
           "sms_cdelay": achieved_c_delay(sms, arch),
           "tms_cdelay": achieved_c_delay(tms, arch)}
    for ncore in (2, 4):
        a = arch.with_cores(ncore)
        cfg = SimConfig(iterations=LOOP_ITERATIONS)
        t_sms = simulate(run_postpass(sms, a), a, cfg).total_cycles
        t_tms = simulate(run_postpass(tms, a), a, cfg).total_cycles
        out[f"speedup_{ncore}core"] = t_sms / t_tms
    return out


def test_motivating_example(benchmark):
    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(f"\nFig 1-2 anchors: SMS II={result['sms_ii']} "
          f"C_delay={result['sms_cdelay']:.1f} (paper: 8, 11); "
          f"TMS II={result['tms_ii']} C_delay={result['tms_cdelay']:.1f} "
          f"(paper: 8, ~5); 2-core TMS/SMS speedup "
          f"{result['speedup_2core']:.2f}x")
    assert result["sms_cdelay"] == 11.0
    assert result["tms_cdelay"] <= 5.0
    assert result["speedup_2core"] > 1.0
