"""Table 2: SMS vs TMS metrics over the synthetic SPECfp2000 suite."""

from repro.experiments import render_table2


def test_table2(benchmark, table2_rows):
    text = benchmark.pedantic(render_table2, args=(table2_rows,),
                              rounds=1, iterations=1)
    print("\n" + text)
    for row in table2_rows:
        # the paper's Table-2 shape: TMS trades II for C_delay
        assert row.tms_ii >= row.sms_ii - 1e-9, row.benchmark
        assert row.tms_cdelay <= row.sms_cdelay + 1e-9, row.benchmark
        assert row.tlp_gap_tms >= row.tlp_gap_sms - 1e-9, row.benchmark
