"""Table 1: the simulated architecture (configuration rendering)."""

from repro.experiments import table1


def test_table1(benchmark):
    text = benchmark(table1)
    print("\n" + text)
    assert "SEND/RECV" in text
